package durable

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/metrics"
	"adaptrm/internal/rm"
)

// Source is the slice of the fleet the writer consumes: the watch
// stream it tails and the snapshot hook it falls back on when the
// stream lags past the retention window. *fleet.Fleet implements it;
// the indirection keeps durable below fleet in the import graph.
type Source interface {
	Watch(ctx context.Context, req api.WatchRequest) (<-chan api.Event, error)
	DeviceSnapshot(dev int) (*rm.Snapshot, error)
}

// FsyncPolicy selects when segment appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncIntervalPolicy fsyncs dirty segments on a timer
	// (Options.FsyncEvery): bounded data at risk, near-zero append cost.
	FsyncIntervalPolicy FsyncPolicy = iota
	// FsyncAlways fsyncs after every appended event: every acknowledged
	// event survives power loss, at a disk round-trip per event.
	FsyncAlways
	// FsyncNever leaves flushing to the operating system page cache.
	FsyncNever
)

// ParseFsyncPolicy parses the -fsync flag values always|interval|never.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncIntervalPolicy, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// Options tune the writer. The zero value is usable: interval fsync
// every 100ms, 4MiB segments, a snapshot every 4096 events.
type Options struct {
	// Fsync is the durability policy for segment appends.
	Fsync FsyncPolicy
	// FsyncEvery is the interval policy's period (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes rotates the current segment once it reaches this
	// size (default 4MiB).
	SegmentBytes int64
	// SnapshotEvery writes a snapshot after this many appended events
	// per device (default 4096), then prunes snapshots beyond the
	// newest two and segments no recovery could need.
	SnapshotEvery int
	// Buffer is the watch subscription buffer per device (default 16384
	// events). A writer that falls further behind than this rescues
	// itself with a snapshot instead of blocking the fleet.
	Buffer int
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	if o.Buffer <= 0 {
		o.Buffer = 1 << 14
	}
	return o
}

// Writer tails every device's event stream into the data dir: one
// goroutine per device consuming a FromSeq-resumed watch subscription,
// so persistence never holds a fleet lock and never blocks a shard
// worker. Close the fleet first (its shutdown drains all pending
// events to subscribers), then the writer.
type Writer struct {
	st  *State
	src Source
	opt Options

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// tickDone marks the interval-fsync goroutine finished (closed by
	// its own exit); Close stops it after the tail goroutines are done.
	tickStop chan struct{}
	tickDone chan struct{}

	devs []*devWriter

	appended     atomic.Int64
	fsyncs       atomic.Int64
	snapshots    atomic.Int64
	rescues      atomic.Int64
	fsyncLatency *metrics.Histogram
	err          atomic.Value // first persistence error, type error

	closeOnce sync.Once
	closeErr  error
}

// devWriter is one device's persistence state. mu guards the file
// fields: the tail goroutine appends under it, while Status, Sync and
// the interval-fsync ticker read and flush under it.
type devWriter struct {
	w   *Writer
	dev int
	dir string

	// ch/chCancel are the initial subscription, opened synchronously by
	// NewWriter: once NewWriter returns, every event the fleet emits —
	// and everything still in the retention ring — is guaranteed to
	// reach this writer, however quickly the fleet is closed afterwards.
	ch       <-chan api.Event
	chCancel context.CancelFunc

	mu        sync.Mutex
	f         *os.File // current segment (nil until the first append)
	segPath   string
	segFirst  uint64
	segBytes  int64
	segCount  int
	lastSeq   uint64 // last appended sequence
	snapSeq   uint64 // newest on-disk snapshot sequence
	sinceSnap int    // events appended since the last snapshot
	dirty     bool   // bytes written since the last fsync
	lastFsync time.Time
	buf       []byte // reusable frame buffer
}

// NewWriter attaches a writer to an opened (and, after replay,
// truncated) data dir and starts tailing src. Each device resumes from
// its recovered sequence position, so the log continues gap-free
// across the restart.
func NewWriter(st *State, src Source, opt Options) (*Writer, error) {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	w := &Writer{
		st: st, src: src, opt: opt,
		ctx: ctx, cancel: cancel,
		tickStop:     make(chan struct{}),
		tickDone:     make(chan struct{}),
		fsyncLatency: metrics.NewHistogram(metrics.DefaultLatencyBuckets),
	}
	w.devs = make([]*devWriter, st.Meta.Devices)
	for dev := range w.devs {
		dir := filepath.Join(st.Dir, deviceDirName(dev))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			cancel()
			return nil, err
		}
		d := &devWriter{w: w, dev: dev, dir: dir}
		if ds := st.Devices[dev]; ds != nil {
			d.lastSeq = ds.AppliedSeq()
			d.segCount = ds.segments
			if ds.Snapshot != nil {
				d.snapSeq = ds.Snapshot.EventSeq
			}
		}
		w.devs[dev] = d
	}
	// Subscribe synchronously before returning: a goroutine-side Watch
	// could race a fast fleet shutdown and miss the stream entirely.
	for _, d := range w.devs {
		sctx, scancel := context.WithCancel(ctx)
		ch, err := src.Watch(sctx, api.WatchRequest{Device: &d.dev, FromSeq: d.lastSeq + 1, Buffer: opt.Buffer})
		if err != nil {
			scancel()
			cancel()
			return nil, err
		}
		d.ch, d.chCancel = ch, scancel
	}
	for _, d := range w.devs {
		w.wg.Add(1)
		go d.run()
	}
	if opt.Fsync == FsyncIntervalPolicy {
		go w.fsyncLoop()
	} else {
		close(w.tickDone)
	}
	return w, nil
}

// run tails one device until the stream closes for good (fleet
// shutdown or writer cancellation), resubscribing across lag. The
// first subscription was opened by NewWriter; only lag resubscriptions
// happen here.
func (d *devWriter) run() {
	defer d.w.wg.Done()
	ch, cancel := d.ch, d.chCancel
	for {
		resub := false
		opening := true
		for ev := range ch {
			if ev.Type == api.EventLagged {
				if opening {
					// The retention window no longer reaches our resume
					// point: snapshot the device's current state instead of
					// chasing events that no longer exist, and continue the
					// log from the snapshot.
					if err := d.rescue(); err != nil {
						d.w.fail(err)
						cancel()
						return
					}
				}
				// In-stream lag: the subscription buffer overflowed but the
				// retention ring is larger, so resuming from lastSeq+1
				// usually replays the dropped range from history (and lands
				// back here, on the opening branch, when it cannot).
				resub = true
				cancel()
				break
			}
			opening = false
			if err := d.append(ev); err != nil {
				d.w.fail(err)
				cancel()
				return
			}
		}
		cancel()
		if !resub {
			// The stream ended on its own: fleet shutdown (after the final
			// drain events, all consumed above) or writer cancellation.
			return
		}
		sctx, scancel := context.WithCancel(d.w.ctx)
		nch, err := d.w.src.Watch(sctx, api.WatchRequest{Device: &d.dev, FromSeq: d.lastSeq + 1, Buffer: d.w.opt.Buffer})
		if err != nil {
			scancel() // fleet closed before resubscribing: nothing more will happen
			return
		}
		ch, cancel = nch, scancel
	}
}

// append frames one event onto the current segment, rotating on size
// or on a sequence discontinuity, fsyncing per policy, and snapshotting
// every SnapshotEvery events.
func (d *devWriter) append(ev api.Event) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil || d.segBytes >= d.w.opt.SegmentBytes || ev.Seq != d.lastSeq+1 {
		if err := d.rotateLocked(ev.Seq); err != nil {
			return err
		}
	}
	d.buf = appendFrame(d.buf[:0], ev)
	if _, err := d.f.Write(d.buf); err != nil {
		return err
	}
	d.segBytes += int64(len(d.buf))
	d.lastSeq = ev.Seq
	d.dirty = true
	d.w.appended.Add(1)
	if d.w.opt.Fsync == FsyncAlways {
		if err := d.syncLocked(); err != nil {
			return err
		}
	}
	d.sinceSnap++
	if d.sinceSnap >= d.w.opt.SnapshotEvery {
		if err := d.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked closes the current segment (fsyncing it, so a rotation
// never leaves unflushed bytes behind an already-started successor)
// and opens a fresh one named by the first sequence it will hold.
func (d *devWriter) rotateLocked(firstSeq uint64) error {
	if d.f != nil {
		if d.dirty {
			if err := d.syncLocked(); err != nil {
				d.f.Close()
				d.f = nil
				return err
			}
		}
		if err := d.f.Close(); err != nil {
			d.f = nil
			return err
		}
		d.f = nil
	}
	path := filepath.Join(d.dir, segmentFileName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// Surface the new name durably before appending to it.
	if err := syncDir(d.dir); err != nil {
		f.Close()
		return err
	}
	d.f, d.segPath, d.segFirst, d.segBytes = f, path, firstSeq, 0
	d.segCount++
	return nil
}

// syncLocked fsyncs the current segment, recording latency.
func (d *devWriter) syncLocked() error {
	if d.f == nil || !d.dirty {
		return nil
	}
	start := time.Now()
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.w.fsyncLatency.ObserveSince(start)
	d.w.fsyncs.Add(1)
	d.dirty = false
	d.lastFsync = time.Now()
	return nil
}

// snapshotLocked writes a snapshot of the device's current live state
// and prunes history no recovery could need: snapshots beyond the
// newest two, and segments entirely behind the oldest retained one.
// The snapshot may run ahead of the log tail (the manager keeps
// emitting while it is taken); recovery handles that by skipping
// replay below the snapshot's sequence.
func (d *devWriter) snapshotLocked() error {
	snap, err := d.w.src.DeviceSnapshot(d.dev)
	if err != nil {
		return err
	}
	if snap.EventSeq <= d.snapSeq {
		d.sinceSnap = 0
		return nil
	}
	if _, err := writeSnapshotFile(d.dir, snap); err != nil {
		return err
	}
	d.snapSeq = snap.EventSeq
	d.sinceSnap = 0
	d.w.snapshots.Add(1)
	return d.pruneLocked()
}

// pruneLocked deletes snapshots beyond the newest two and segment
// files that even the oldest retained snapshot's replay would skip: a
// segment is dead once its successor starts at or below that
// snapshot's sequence + 1. The current segment always survives.
func (d *devWriter) pruneLocked() error {
	snaps, err := listSeqFiles(d.dir, snapshotPrefix, snapshotSuffix)
	if err != nil {
		return err
	}
	const retain = 2
	if len(snaps) <= retain {
		return nil
	}
	oldest := snaps[len(snaps)-retain].seq
	for _, s := range snaps[:len(snaps)-retain] {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	segs, err := listSeqFiles(d.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].seq > oldest+1 || segs[i].path == d.segPath {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return err
		}
		d.segCount--
	}
	return syncDir(d.dir)
}

// rescue handles a resume point evicted from the retention window: the
// dropped events are unrecoverable, so the device's current state is
// snapshotted, the current segment is sealed (frames within a segment
// stay contiguous), and the log restarts beyond the gap in a fresh
// segment on the next append.
func (d *devWriter) rescue() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f != nil {
		if err := d.syncLocked(); err != nil {
			return err
		}
		if err := d.f.Close(); err != nil {
			d.f = nil
			return err
		}
		d.f = nil
	}
	snap, err := d.w.src.DeviceSnapshot(d.dev)
	if err != nil {
		return err
	}
	if _, err := writeSnapshotFile(d.dir, snap); err != nil {
		return err
	}
	d.snapSeq = snap.EventSeq
	d.lastSeq = snap.EventSeq
	d.sinceSnap = 0
	d.w.snapshots.Add(1)
	d.w.rescues.Add(1)
	return d.pruneLocked()
}

// fsyncLoop is the interval policy's ticker: it flushes every dirty
// segment once per period.
func (w *Writer) fsyncLoop() {
	defer close(w.tickDone)
	t := time.NewTicker(w.opt.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.tickStop:
			return
		case <-t.C:
			for _, d := range w.devs {
				d.mu.Lock()
				if err := d.syncLocked(); err != nil {
					w.fail(err)
				}
				d.mu.Unlock()
			}
		}
	}
}

// fail records the first persistence error; the writer keeps the fleet
// running (durability degrades, service does not).
func (w *Writer) fail(err error) {
	w.err.CompareAndSwap(nil, err)
}

// Err returns the first persistence error, or nil.
func (w *Writer) Err() error {
	if err, ok := w.err.Load().(error); ok {
		return err
	}
	return nil
}

// Sync flushes every device's dirty segment to stable storage.
func (w *Writer) Sync() error {
	var first error
	for _, d := range w.devs {
		d.mu.Lock()
		if err := d.syncLocked(); err != nil && first == nil {
			first = err
		}
		d.mu.Unlock()
	}
	return first
}

// Close finishes persistence: it waits for the tail goroutines (close
// the fleet first — its shutdown drain ends every stream), stops the
// fsync ticker, writes a final snapshot per device so the next start
// replays a minimal tail, and fsyncs and closes the segment files.
func (w *Writer) Close() error {
	w.closeOnce.Do(func() {
		w.wg.Wait()
		close(w.tickStop)
		<-w.tickDone
		w.cancel()
		var first error
		for _, d := range w.devs {
			d.mu.Lock()
			if err := d.finishLocked(); err != nil && first == nil {
				first = err
			}
			d.mu.Unlock()
		}
		if first == nil {
			first = w.Err()
		}
		w.closeErr = first
	})
	return w.closeErr
}

// finishLocked writes the clean-shutdown snapshot (when the device
// advanced past the newest one) and fsyncs and closes the segment.
func (d *devWriter) finishLocked() error {
	var first error
	if d.lastSeq > d.snapSeq {
		if err := d.snapshotLocked(); err != nil {
			first = err
		}
	}
	if err := d.syncLocked(); err != nil && first == nil {
		first = err
	}
	if d.f != nil {
		if err := d.f.Close(); err != nil && first == nil {
			first = err
		}
		d.f = nil
	}
	return first
}
