package durable

import (
	"os"
	"path/filepath"
	"testing"

	"adaptrm/internal/api"
)

// BenchmarkWALAppend pins the hot append path — frame encode into a
// reused buffer plus the segment write — at zero heap allocations per
// event (enforced by scripts/bench-allocs-gate.sh).
func BenchmarkWALAppend(b *testing.B) {
	f, err := os.OpenFile(filepath.Join(b.TempDir(), "wal.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ev := api.Event{
		Device: 3, Type: api.EventJobCompleted, At: 12.345678901,
		JobID: 42, App: "lambda1", Deadline: 99.5,
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i) + 1
		buf = appendFrame(buf[:0], ev)
		if _, err := f.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}
