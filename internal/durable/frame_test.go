package durable

import (
	"encoding/json"
	"reflect"
	"testing"

	"adaptrm/internal/api"
)

// testEvents is a small corpus covering every api.Event field shape the
// fleet emits, including values that stress the hand-rolled encoder
// (escapes, negative and fractional floats, shortest-form round-trips).
func testEvents() []api.Event {
	return []api.Event{
		{Device: 0, Seq: 1, Type: api.EventJobAdmitted, At: 0.1, JobID: 1, App: "mp3_dec", Deadline: 42.5},
		{Device: 3, Seq: 2, Type: api.EventScheduleChanged, At: 0.1},
		{Device: 3, Seq: 3, Type: api.EventJobStarted, At: 1.0 / 3.0, JobID: 7, App: "gsm_enc"},
		{Device: 1, Seq: 4, Type: api.EventJobCompleted, At: 123456.789, JobID: 7, App: "a\"b\\c\x01", Missed: true},
		{Device: 2, Seq: 5, Type: api.EventJobRejected, At: 0.30000000000000004, App: "x", Deadline: 1e-9},
		{Device: 0, Seq: 6, Type: api.EventJobCancelled, JobID: 12},
		{Device: 0, Seq: 7, Type: api.EventClockAdvanced, At: 99.25},
		{Device: 9, Seq: 8, Type: api.EventLagged, Dropped: 1234},
		{Device: 4, Seq: 9, Type: api.EventScheduleSwapped, At: 7.5,
			Payload: `[{"start":7.5,"end":9.25,"placements":[{"job":3,"point":1}]}]`},
	}
}

// TestFrameRoundTrip pins the encoder against encoding/json (the
// decoder's parser) field by field, then decodes a multi-frame buffer
// back and requires exact equality.
func TestFrameRoundTrip(t *testing.T) {
	evs := testEvents()
	var buf []byte
	for _, ev := range evs {
		frame := appendFrame(nil, ev)
		var got api.Event
		if err := json.Unmarshal(frame[frameHeader:], &got); err != nil {
			t.Fatalf("payload of %+v is not JSON: %v", ev, err)
		}
		if got != ev {
			t.Fatalf("round trip changed the event:\n  in  %+v\n  out %+v", ev, got)
		}
		buf = appendFrame(buf, ev)
	}
	got, valid := decodeFrames(buf, nil)
	if valid != len(buf) {
		t.Fatalf("decode stopped at %d of %d clean bytes", valid, len(buf))
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("decoded %+v, want %+v", got, evs)
	}
}

// TestFrameTruncation cuts a clean multi-frame buffer at every byte
// offset: decoding must never panic, must recover exactly the frames
// that fit entirely below the cut, and must report a valid length no
// larger than the cut.
func TestFrameTruncation(t *testing.T) {
	evs := testEvents()
	var buf []byte
	ends := make([]int, len(evs)) // end offset of each frame
	for i, ev := range evs {
		buf = appendFrame(buf, ev)
		ends[i] = len(buf)
	}
	for cut := 0; cut <= len(buf); cut++ {
		whole := 0
		for whole < len(ends) && ends[whole] <= cut {
			whole++
		}
		got, valid := decodeFrames(buf[:cut], nil)
		if len(got) != whole {
			t.Fatalf("cut %d: decoded %d events, want %d", cut, len(got), whole)
		}
		wantValid := 0
		if whole > 0 {
			wantValid = ends[whole-1]
		}
		if valid != wantValid {
			t.Fatalf("cut %d: valid prefix %d, want %d", cut, valid, wantValid)
		}
	}
}

// TestFrameBitFlips corrupts each byte of a clean buffer in turn (xor
// 0xff): decoding must never panic and must stop at or before the
// frame containing the corrupted byte — the CRC, the length bounds or
// the JSON parse catches it, never a crash or a silently wrong event.
func TestFrameBitFlips(t *testing.T) {
	evs := testEvents()
	var buf []byte
	starts := make([]int, len(evs))
	for i, ev := range evs {
		starts[i] = len(buf)
		buf = appendFrame(buf, ev)
	}
	for pos := 0; pos < len(buf); pos++ {
		flipped := 0
		for flipped+1 < len(starts) && starts[flipped+1] <= pos {
			flipped++
		}
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 0xff
		got, valid := decodeFrames(mut, nil)
		if len(got) > flipped {
			t.Fatalf("flip at %d: decoded %d events past the corrupted frame %d", pos, len(got), flipped)
		}
		if valid > starts[flipped] {
			t.Fatalf("flip at %d: valid prefix %d reaches into corrupted frame starting %d", pos, valid, starts[flipped])
		}
		for i, ev := range got {
			if ev != evs[i] {
				t.Fatalf("flip at %d: surviving event %d altered: %+v", pos, i, ev)
			}
		}
	}
}

// TestFrameRejectsGarbage pins the individual validation rules:
// zero-length frames, oversized lengths, truncated headers, a frame
// whose payload is valid JSON but carries no sequence number.
func TestFrameRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   {1, 2, 3},
		"zero length":    {0, 0, 0, 0, 0, 0, 0, 0},
		"huge length":    {0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0},
		"missing body":   {8, 0, 0, 0, 0, 0, 0, 0},
		"all ones":       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"seqless record": appendFrame(nil, api.Event{Device: 1, Type: api.EventJobAdmitted}),
	}
	for name, buf := range cases {
		if got, valid := decodeFrames(buf, nil); len(got) != 0 || valid != 0 {
			t.Errorf("%s: decoded %d events, valid %d; want none", name, len(got), valid)
		}
	}
}

// FuzzDecodeFrames hammers the decoder with arbitrary bytes — both raw
// garbage and mutations of well-formed buffers via the seed corpus.
// The invariants: never panic, valid is a prefix length within bounds,
// re-decoding the valid prefix reproduces the same events, and every
// decoded event re-encodes to a frame that decodes back to itself.
func FuzzDecodeFrames(f *testing.F) {
	var clean []byte
	for _, ev := range testEvents() {
		clean = appendFrame(clean, ev)
	}
	f.Add(clean)
	f.Add(clean[:17])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, valid := decodeFrames(data, nil)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid %d out of range [0,%d]", valid, len(data))
		}
		again, validAgain := decodeFrames(data[:valid], nil)
		if validAgain != valid || !reflect.DeepEqual(again, got) {
			t.Fatalf("valid prefix does not re-decode to itself: %d/%d events, %d/%d bytes",
				len(again), len(got), validAgain, valid)
		}
		for _, ev := range got {
			back, n := decodeFrames(appendFrame(nil, ev), nil)
			if n == 0 || len(back) != 1 || back[0] != ev {
				t.Fatalf("decoded event does not re-encode cleanly: %+v", ev)
			}
		}
	})
}
