package durable_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/durable"
	"adaptrm/internal/fleet"
	"adaptrm/internal/motiv"
	"adaptrm/internal/rm"
)

var ctxBG = context.Background()

// harness is one live fleet with an attached writer and a reference
// oracle: after every operation the touched device's full state is
// snapshotted in memory, keyed by event sequence, so any later
// recovery — clean, killed, or torn at an arbitrary byte — can be
// checked for byte-identical equality at whatever sequence it lands on.
type harness struct {
	t    testing.TB
	n    int
	opt  fleet.Options
	meta durable.Meta

	f   *fleet.Fleet
	w   *durable.Writer
	rng *rand.Rand

	now  []float64
	jobs [][]int
	refs []map[uint64]*rm.Snapshot
}

func testConfigs(n int) []fleet.DeviceConfig {
	devs := make([]fleet.DeviceConfig, n)
	for i := range devs {
		devs[i] = fleet.DeviceConfig{
			Platform:  motiv.Platform(),
			Library:   motiv.Library(),
			Scheduler: core.New(),
		}
	}
	return devs
}

// normSnap strips the one non-deterministic snapshot field (wall-clock
// scheduling time) so states can be compared exactly.
func normSnap(s *rm.Snapshot) *rm.Snapshot {
	c := *s
	c.SchedulingTimeNs = 0
	return &c
}

func newHarness(t testing.TB, n int, seed int64, opt fleet.Options) *harness {
	t.Helper()
	f, err := fleet.New(testConfigs(n), opt)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t: t, n: n, opt: opt,
		meta: durable.Meta{Devices: n, Scheduler: "edf-mdf", RescheduleOnFinish: opt.Manager.RescheduleOnFinish},
		f:    f,
		rng:  rand.New(rand.NewSource(seed)),
		now:  make([]float64, n),
		jobs: make([][]int, n),
		refs: make([]map[uint64]*rm.Snapshot, n),
	}
	for d := 0; d < n; d++ {
		h.refs[d] = map[uint64]*rm.Snapshot{}
		h.record(d)
	}
	return h
}

func (h *harness) attach(dir string, wopt durable.Options) *durable.State {
	h.t.Helper()
	st, err := durable.Open(dir, h.meta)
	if err != nil {
		h.t.Fatal(err)
	}
	w, err := durable.NewWriter(st, h.f, wopt)
	if err != nil {
		h.t.Fatal(err)
	}
	h.w = w
	return st
}

// record stores the oracle state of one device at its current sequence.
func (h *harness) record(d int) {
	h.t.Helper()
	snap, err := h.f.DeviceSnapshot(d)
	if err != nil {
		h.t.Fatal(err)
	}
	h.refs[d][snap.EventSeq] = normSnap(snap)
}

// drive pushes ops seeded operations through the service, recording
// the oracle after each (operations are synchronous, so the device's
// post-op state is stable when recorded — only the WAL is async).
func (h *harness) drive(ops int) {
	h.t.Helper()
	svc := h.f.Service()
	apps := []string{"lambda1", "lambda2"}
	for i := 0; i < ops; i++ {
		d := h.rng.Intn(h.n)
		switch h.rng.Intn(5) {
		case 0, 1, 2:
			r, err := svc.Submit(ctxBG, api.SubmitRequest{
				Device: d, At: h.now[d], App: apps[h.rng.Intn(len(apps))],
				Deadline: h.now[d] + 1 + h.rng.Float64()*9,
			})
			if err != nil && !errors.Is(err, api.ErrInfeasible) {
				h.t.Fatalf("submit: %v", err)
			}
			if err == nil && r.Accepted {
				h.jobs[d] = append(h.jobs[d], r.JobID)
			}
		case 3:
			h.now[d] += h.rng.Float64() * 2
			if _, err := svc.Advance(ctxBG, api.AdvanceRequest{Device: d, To: h.now[d]}); err != nil {
				h.t.Fatalf("advance: %v", err)
			}
		case 4:
			if len(h.jobs[d]) == 0 {
				continue
			}
			id := h.jobs[d][h.rng.Intn(len(h.jobs[d]))]
			if _, err := svc.Cancel(ctxBG, api.CancelRequest{Device: d, JobID: id}); err != nil && !errors.Is(err, api.ErrUnknownJob) {
				h.t.Fatalf("cancel: %v", err)
			}
		}
		h.record(d)
	}
}

// catchUp waits until the WAL has appended every emitted event (the
// writer is asynchronous by design), then flushes it.
func (h *harness) catchUp() {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		want := h.f.DeviceEventSeqs()
		got := h.w.Status().Devices
		ok := true
		for d, seq := range want {
			if got[d].LastSeq != seq {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("WAL never caught up: fleet %v, wal %+v", want, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := h.w.Sync(); err != nil {
		h.t.Fatal(err)
	}
}

// shutdown closes fleet then writer — the documented clean order. The
// fleet's Close drains every device (emitting final completion
// events), so the oracle records each device once more afterwards.
func (h *harness) shutdown() {
	h.t.Helper()
	h.f.Close()
	for d := 0; d < h.n; d++ {
		h.record(d)
	}
	if err := h.w.Close(); err != nil {
		h.t.Fatal(err)
	}
}

// recoverAndCheck opens dir, rebuilds a fleet from it, and asserts that
// every recovered device is byte-identical to the oracle at whatever
// sequence recovery landed on. Returns the recovered state, fleet and
// per-device results for callers that keep going.
func (h *harness) recoverAndCheck(dir string) (*durable.State, *fleet.Fleet, map[int]fleet.DeviceRecoveryResult) {
	h.t.Helper()
	st, err := durable.Open(dir, h.meta)
	if err != nil {
		h.t.Fatal(err)
	}
	rec := make(map[int]fleet.DeviceRecovery, len(st.Devices))
	for dev, ds := range st.Devices {
		rec[dev] = fleet.DeviceRecovery{Snapshot: ds.Snapshot, Events: ds.Events}
	}
	f2, res, err := fleet.Recover(testConfigs(h.n), h.opt, rec)
	if err != nil {
		h.t.Fatal(err)
	}
	for dev := 0; dev < h.n; dev++ {
		applied := uint64(0)
		if r, ok := res[dev]; ok {
			applied = r.AppliedSeq
		}
		want, ok := h.refs[dev][applied]
		if !ok {
			h.t.Fatalf("device %d recovered to seq %d, which no operation boundary produced", dev, applied)
		}
		snap, err := f2.DeviceSnapshot(dev)
		if err != nil {
			h.t.Fatal(err)
		}
		if got := normSnap(snap); !reflect.DeepEqual(got, want) {
			h.t.Fatalf("device %d at seq %d diverges from pre-crash state:\n got  %+v\n want %+v", dev, applied, got, want)
		}
		if err := st.Truncate(dev, applied); err != nil {
			h.t.Fatal(err)
		}
	}
	return st, f2, res
}

// copyDir snapshots a data dir the way kill -9 would leave it (modulo
// torn bytes, which the torn-tail tests add by hand).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "img")
	if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
		t.Fatal(err)
	}
	return dst
}

// lastSegment returns the path of a device's newest segment file.
func lastSegment(t *testing.T, dir string, dev int) string {
	t.Helper()
	pat := filepath.Join(dir, fmt.Sprintf("dev-%04d", dev), "wal-*.log")
	segs, err := filepath.Glob(pat)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments match %s: %v", pat, err)
	}
	return segs[len(segs)-1]
}

// TestOpenMetaMismatch pins the fail-fast on reusing a data dir with a
// different fleet shape.
func TestOpenMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := durable.Open(dir, durable.Meta{Devices: 2, Scheduler: "edf-mdf"}); err != nil {
		t.Fatal(err)
	}
	_, err := durable.Open(dir, durable.Meta{Devices: 3, Scheduler: "edf-mdf"})
	if !errors.Is(err, durable.ErrMetaMismatch) {
		t.Fatalf("got %v, want ErrMetaMismatch", err)
	}
}

// TestCleanShutdownRecovery is the happy path: traffic, clean close
// (final snapshot per device), reopen — every device byte-identical at
// its final sequence, recovered from snapshot plus an empty tail.
func TestCleanShutdownRecovery(t *testing.T) {
	h := newHarness(t, 3, 41, fleet.Options{Shards: 2, Manager: rm.Options{RescheduleOnFinish: true}})
	dir := t.TempDir()
	h.attach(dir, durable.Options{Fsync: durable.FsyncNever, SegmentBytes: 1 << 10, SnapshotEvery: 64})
	h.drive(160)
	h.catchUp()
	h.shutdown()
	st, f2, _ := h.recoverAndCheck(dir)
	defer f2.Close()
	if !st.Recovered || st.Snapshots != 3 {
		t.Fatalf("clean shutdown should leave a snapshot per device: %+v", st)
	}
	// The tiny segment threshold must have forced rotations.
	if ws := h.w.Status(); ws.Appended == 0 || ws.Snapshots == 0 {
		t.Fatalf("writer did no work: %+v", ws)
	}
}

// TestKillRecovery is the crash path: no Close, no final snapshot —
// the data dir is copied mid-flight (after the async writer caught up
// and flushed) exactly as kill -9 would leave it, and recovery must
// land every device byte-identical at its final sequence. A second
// round then continues on the recovered fleet — WAL appends resume
// gap-free across the restart — and a third recovery checks the
// combined history, exercising fsync=always on the continuation.
func TestKillRecovery(t *testing.T) {
	h := newHarness(t, 2, 43, fleet.Options{Manager: rm.Options{RescheduleOnFinish: true}})
	dir := t.TempDir()
	h.attach(dir, durable.Options{Fsync: durable.FsyncIntervalPolicy, FsyncEvery: 5 * time.Millisecond, SegmentBytes: 1 << 10, SnapshotEvery: 32})
	h.drive(120)
	h.catchUp()
	img := copyDir(t, dir) // the kill: state frozen without any shutdown path
	h.f.Close()
	h.w.Close()

	_, f2, _ := h.recoverAndCheck(img)
	h.f = f2
	st2 := h.attach(img, durable.Options{Fsync: durable.FsyncAlways, SegmentBytes: 1 << 10, SnapshotEvery: 32})
	_ = st2
	h.drive(60)
	h.catchUp()
	h.shutdown()
	_, f3, _ := h.recoverAndCheck(img)
	f3.Close()
}

// TestTornTailRecovery truncates the newest segment of a crash image
// at a sweep of byte offsets: recovery must never fail, must land on
// an operation boundary at or before the tear, and must be
// byte-identical to the oracle there. This is the mid-frame-kill
// property test at the full-system level (the frame-level sweep lives
// in frame_test.go).
func TestTornTailRecovery(t *testing.T) {
	h := newHarness(t, 2, 47, fleet.Options{Manager: rm.Options{RescheduleOnFinish: true}})
	dir := t.TempDir()
	// Huge SnapshotEvery: no snapshots exist in the crash image, so
	// recovery is log-only replay and torn tails actually bite (a clean
	// shutdown would write a final snapshot and mask them).
	h.attach(dir, durable.Options{Fsync: durable.FsyncNever, SegmentBytes: 1 << 11, SnapshotEvery: 1 << 20})
	h.drive(100)
	h.catchUp()
	base := copyDir(t, dir) // crash image: no shutdown path ran

	seg := lastSegment(t, base, 0)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	finalSeq := h.f.DeviceEventSeqs()[0]
	h.shutdown()
	cuts := []int64{0, 1, 7, info.Size() / 3, info.Size() / 2, info.Size() - 9, info.Size() - 1}
	for _, cut := range cuts {
		if cut < 0 {
			continue
		}
		img := copyDir(t, base)
		if err := os.Truncate(lastSegment(t, img, 0), cut); err != nil {
			t.Fatal(err)
		}
		st, f2, res := h.recoverAndCheck(img)
		f2.Close()
		if cut != 0 && cut < info.Size() && st.TruncatedBytes == 0 && res[0].Dropped == 0 {
			// A cut inside the file must shrink either the physical log
			// (torn frame) or the logical one (dropped partial unit) —
			// unless it happens to land exactly on a unit boundary.
			if res[0].AppliedSeq == finalSeq {
				t.Fatalf("cut %d lost nothing?", cut)
			}
		}
	}
}

// TestLagRescue starts the writer against a fleet whose retention
// window has already evicted the early history: the subscription opens
// with a Lagged marker, and the writer must rescue itself with a
// snapshot instead of failing — recovery then lands on the post-rescue
// history. Also covers recovery when snapshots exist but early
// segments do not.
func TestLagRescue(t *testing.T) {
	h := newHarness(t, 2, 53, fleet.Options{EventHistory: 16, Manager: rm.Options{RescheduleOnFinish: true}})
	h.drive(80) // well past 16 retained events per device, no writer yet
	dir := t.TempDir()
	h.attach(dir, durable.Options{Fsync: durable.FsyncNever, SnapshotEvery: 1 << 20})
	h.drive(40)
	h.catchUp()
	ws := h.w.Status()
	if ws.Rescues == 0 {
		t.Fatalf("expected at least one lag rescue: %+v", ws)
	}
	h.shutdown()
	_, f2, _ := h.recoverAndCheck(dir)
	f2.Close()
}

// BenchmarkRecovery measures cold-start recovery — segment decode plus
// deterministic replay through fleet.Recover — for a log-only data dir
// (the worst case: every event replays). Reported events/s feeds
// benchmarks/README.md.
func BenchmarkRecovery(b *testing.B) {
	h := newHarness(b, 1, 61, fleet.Options{Manager: rm.Options{RescheduleOnFinish: true}})
	dir := b.TempDir()
	h.attach(dir, durable.Options{Fsync: durable.FsyncNever, SnapshotEvery: 1 << 20})
	h.drive(400)
	h.catchUp()
	h.shutdown()
	// Close writes a final snapshot per device; drop them so every
	// iteration replays the full log from sequence one.
	snaps, err := filepath.Glob(filepath.Join(dir, "dev-0000", "snap-*.json"))
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range snaps {
		if err := os.Remove(s); err != nil {
			b.Fatal(err)
		}
	}
	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := durable.Open(dir, h.meta)
		if err != nil {
			b.Fatal(err)
		}
		rec := make(map[int]fleet.DeviceRecovery, len(st.Devices))
		for dev, ds := range st.Devices {
			rec[dev] = fleet.DeviceRecovery{Snapshot: ds.Snapshot, Events: ds.Events}
		}
		f2, _, err := fleet.Recover(testConfigs(1), h.opt, rec)
		if err != nil {
			b.Fatal(err)
		}
		events = st.Events
		f2.Close()
	}
	b.StopTimer()
	if events == 0 {
		b.Fatal("recovery replayed no events")
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// TestImmediateShutdown pins the NewWriter subscription guarantee:
// a fleet driven and closed immediately after the writer attaches —
// with no time for any goroutine to be scheduled — must still persist
// every event, because NewWriter subscribes synchronously and the
// fleet's shutdown drain delivers everything before ending streams.
func TestImmediateShutdown(t *testing.T) {
	h := newHarness(t, 2, 59, fleet.Options{Manager: rm.Options{RescheduleOnFinish: true}})
	dir := t.TempDir()
	h.attach(dir, durable.Options{Fsync: durable.FsyncNever})
	h.drive(30)
	h.shutdown() // no catchUp: close must not outrun the tail goroutines
	want := h.f.DeviceEventSeqs()
	st, f2, res := h.recoverAndCheck(dir)
	for dev, seq := range want {
		if r := res[dev]; r.AppliedSeq != seq {
			t.Fatalf("device %d recovered to seq %d, want the full stream %d", dev, r.AppliedSeq, seq)
		}
	}
	_ = st
	f2.Close()
}
