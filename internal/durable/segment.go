package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"adaptrm/internal/rm"
)

// On-disk layout:
//
//	<dir>/meta.json                   fleet identity, checked on reopen
//	<dir>/dev-0007/wal-…000042.log    segment: frames for seqs >= 42
//	<dir>/dev-0007/snap-…000979.json  snapshot through seq 979
//
// Segment files are named by the sequence number of their first record,
// zero-padded so lexicographic order is sequence order; within a
// segment, frames are contiguous by construction (the writer rotates on
// any discontinuity, which only a snapshot-rescue after watch lag can
// introduce). Snapshot files are canonical JSON of rm.Snapshot, written
// via temp-file + fsync + rename so a crash mid-write never replaces a
// good snapshot with a torn one.

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".json"
	metaName       = "meta.json"
	seqDigits      = 20 // fits any uint64
)

func deviceDirName(dev int) string { return fmt.Sprintf("dev-%04d", dev) }

func segmentFileName(firstSeq uint64) string {
	return fmt.Sprintf("%s%0*d%s", segmentPrefix, seqDigits, firstSeq, segmentSuffix)
}

func snapshotFileName(seq uint64) string {
	return fmt.Sprintf("%s%0*d%s", snapshotPrefix, seqDigits, seq, snapshotSuffix)
}

func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != seqDigits {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// fileInfo is one segment or snapshot file keyed by its sequence
// number.
type fileInfo struct {
	seq  uint64
	path string
}

// listSeqFiles returns the prefix/suffix-matching files of dir sorted
// ascending by sequence. A missing dir is an empty listing.
func listSeqFiles(dir, prefix, suffix string) ([]fileInfo, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []fileInfo
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), prefix, suffix); ok {
			out = append(out, fileInfo{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// writeSnapshotFile atomically persists one snapshot: canonical JSON to
// a temp file, fsync, rename into place, fsync the directory so the
// rename itself is durable.
func writeSnapshotFile(dir string, snap *rm.Snapshot) (string, error) {
	data, err := json.Marshal(snap)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, snapshotFileName(snap.EventSeq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if cerr := f.Close(); cerr != nil {
		os.Remove(tmp)
		return "", cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, syncDir(dir)
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) (*rm.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap rm.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, err
	}
	if snap.NextID < 1 {
		return nil, fmt.Errorf("durable: snapshot %s: invalid next id %d", path, snap.NextID)
	}
	return &snap, nil
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable. Best effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}

// Meta pins the fleet identity a data dir belongs to. Replaying a log
// against a different platform, scheduler or device count would not
// diverge quietly — the replay verification catches it — but failing
// fast with a configuration message beats a cryptic divergence error.
type Meta struct {
	// Version is the on-disk format version.
	Version int `json:"version"`
	// Devices is the fleet size.
	Devices int `json:"devices"`
	// Scheduler names the per-device scheduler.
	Scheduler string `json:"scheduler"`
	// Cache records whether the schedule cache was enabled.
	Cache bool `json:"cache"`
	// RescheduleOnFinish records the manager option of the same name
	// (it changes the event grammar, so it must match on recovery).
	RescheduleOnFinish bool `json:"reschedule_on_finish"`
}

// metaVersion is the current on-disk format version.
const metaVersion = 1

func loadMeta(dir string) (Meta, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaName))
	if os.IsNotExist(err) {
		return Meta{}, false, nil
	}
	if err != nil {
		return Meta{}, false, err
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, false, fmt.Errorf("durable: %s/%s: %w", dir, metaName, err)
	}
	return m, true, nil
}

func storeMeta(dir string, m Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, metaName)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return syncDir(dir)
}
