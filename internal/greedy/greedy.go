// Package greedy implements MMKP-GR, a per-segment greedy runtime
// manager in the spirit of Ykman-Couvreur et al. (SOC'06), the fast MMKP
// heuristic underlying several of the runtime managers the paper compares
// against in its related work ([17], [20]).
//
// Like MMKP-LR, the analysis scope is a single mapping segment: at every
// segment start the manager greedily assigns each job the cheapest
// feasible operating point — ordering jobs by Earliest Deadline First and
// points by remaining energy, with the aggregate capacity-normalized
// resource demand (the heuristic's "single value") as tie-breaker — then
// cuts the segment at the first completion. It shares MMKP-LR's
// optimistic deadline check and thus its failure modes; it exists as an
// additional baseline for the evaluation harness and ablation benches.
package greedy

import (
	"math"
	"sort"

	"adaptrm/internal/job"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Scheduler is the MMKP-GR scheduler.
type Scheduler struct{}

// New returns an MMKP-GR scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "MMKP-GR" }

// aggregate is the capacity-normalized total resource demand of a point,
// the single scalar of the Ykman-Couvreur heuristic.
func aggregate(p opset.Point, cap platform.Alloc) float64 {
	a := 0.0
	for d, n := range p.Alloc {
		if cap[d] > 0 {
			a += float64(n) / float64(cap[d])
		}
	}
	return a
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	cap := plat.Capacity()
	k := &schedule.Schedule{}
	alive := jobs.Clone()
	cur := t
	for len(alive) > 0 {
		for _, j := range alive {
			if !j.Feasible(cur) {
				return nil, sched.ErrInfeasible
			}
		}
		// EDF over the segment: time-critical jobs claim resources
		// first.
		order := make(job.Set, len(alive))
		copy(order, alive)
		order.SortEDF()
		free := cap.Clone()
		dtMin := math.Inf(1)
		type pick struct {
			j  *job.Job
			pt int
		}
		var picks []pick
		for _, j := range order {
			idxs := make([]int, j.Table.Len())
			for i := range idxs {
				idxs[i] = i
			}
			sort.SliceStable(idxs, func(a, b int) bool {
				pa, pb := j.Table.Points[idxs[a]], j.Table.Points[idxs[b]]
				ea, eb := pa.RemainingEnergy(j.Remaining), pb.RemainingEnergy(j.Remaining)
				if ea != eb {
					return ea < eb
				}
				return aggregate(pa, cap) < aggregate(pb, cap)
			})
			fastest := j.Table.FastestTime()
			for _, pi := range idxs {
				p := j.Table.Points[pi]
				if !p.Alloc.Fits(free) {
					continue
				}
				r := p.RemainingTime(j.Remaining)
				if r <= dtMin+schedule.Eps {
					if cur+r > j.Deadline+schedule.Eps {
						continue
					}
				} else {
					rest := j.Remaining - dtMin/p.Time
					if rest < 0 {
						rest = 0
					}
					if cur+dtMin+fastest*rest > j.Deadline+schedule.Eps {
						continue
					}
				}
				picks = append(picks, pick{j, pi})
				free.SubInPlace(p.Alloc)
				if r < dtMin {
					dtMin = r
				}
				break
			}
		}
		if len(picks) == 0 {
			return nil, sched.ErrInfeasible
		}
		dt := math.Inf(1)
		for _, p := range picks {
			if r := p.j.Table.Points[p.pt].RemainingTime(p.j.Remaining); r < dt {
				dt = r
			}
		}
		seg := schedule.Segment{Start: cur, End: cur + dt}
		for _, p := range picks {
			seg.Placements = append(seg.Placements, schedule.Placement{JobID: p.j.ID, Point: p.pt})
		}
		sort.Slice(seg.Placements, func(a, b int) bool {
			return seg.Placements[a].JobID < seg.Placements[b].JobID
		})
		if err := k.Append(seg); err != nil {
			return nil, err
		}
		cur += dt
		mapped := make(map[int]int, len(picks))
		for _, p := range picks {
			mapped[p.j.ID] = p.pt
		}
		var next job.Set
		for _, j := range alive {
			pi, ran := mapped[j.ID]
			if !ran {
				next = append(next, j)
				continue
			}
			pt := j.Table.Points[pi]
			j.Remaining -= dt / pt.Time
			if j.Remaining <= schedule.Eps {
				if cur > j.Deadline+1e-6 {
					return nil, sched.ErrInfeasible
				}
				continue
			}
			next = append(next, j)
		}
		alive = next
	}
	k.Normalize()
	return k, nil
}
