package greedy

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/exmem"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/sched"
)

func TestName(t *testing.T) {
	if New().Name() != "MMKP-GR" {
		t.Error("name wrong")
	}
}

func TestSingleJobOptimal(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 9, Remaining: 1}}
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.Energy(jobs); math.Abs(got-8.90) > 1e-9 {
		t.Errorf("energy = %v, want 8.90", got)
	}
}

func TestS1ValidAndNotBetterThanExact(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	ex, err := exmem.New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.Energy(jobs) < ex.Energy(jobs)-1e-9 {
		t.Error("greedy beats the exact reference")
	}
}

func TestInfeasibleRejected(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 1, Remaining: 1}}
	if _, err := New().Schedule(jobs, motiv.Platform(), 0); !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
	if _, err := New().Schedule(nil, motiv.Platform(), 0); err == nil {
		t.Error("empty set accepted")
	}
}

func TestDoesNotMutate(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	before := jobs.Clone()
	if _, err := New().Schedule(jobs, motiv.Platform(), 1); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Remaining != before[i].Remaining {
			t.Errorf("job %d mutated", jobs[i].ID)
		}
	}
}
