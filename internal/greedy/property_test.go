package greedy

import (
	"errors"
	"math/rand"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/sched"
)

// Randomized check: MMKP-GR either rejects or produces a schedule that
// passes the full constraint validation, without mutating inputs.
func TestGreedyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	plat := motiv.Platform()
	tables := []*opset.Table{motiv.Lambda1(), motiv.Lambda2()}
	rounds := 200
	if testing.Short() {
		rounds = 40
	}
	s := New()
	for round := 0; round < rounds; round++ {
		n := 1 + rng.Intn(4)
		jobs := make(job.Set, 0, n)
		for i := 0; i < n; i++ {
			tbl := tables[rng.Intn(len(tables))]
			rho := 0.1 + rng.Float64()*0.9
			pt := tbl.Points[rng.Intn(tbl.Len())]
			jobs = append(jobs, &job.Job{
				ID:        i + 1,
				Table:     tbl,
				Deadline:  pt.RemainingTime(rho)*(0.6+rng.Float64()*3) + 1e-6,
				Remaining: rho,
			})
		}
		before := jobs.Clone()
		k, err := s.Schedule(jobs, plat, 0)
		if err != nil {
			if !errors.Is(err, sched.ErrInfeasible) {
				t.Fatalf("round %d: unexpected error %v", round, err)
			}
		} else if verr := k.Validate(plat, jobs, 0); verr != nil {
			t.Fatalf("round %d: invalid schedule: %v", round, verr)
		}
		for i := range jobs {
			if jobs[i].Remaining != before[i].Remaining {
				t.Fatalf("round %d: job %d mutated", round, jobs[i].ID)
			}
		}
	}
}
