package predict

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/sched"
)

func TestInterArrivalLearnsPeriod(t *testing.T) {
	p := NewInterArrival()
	for i := 0; i < 6; i++ {
		p.Observe(float64(i)*10, "app")
	}
	if gap := p.expectedGap("app"); math.Abs(gap-10) > 1e-9 {
		t.Errorf("learned gap = %v, want 10", gap)
	}
	fc := p.Forecast(50, 25)
	if len(fc) != 2 {
		t.Fatalf("forecast = %v, want 2 arrivals (60, 70)", fc)
	}
	if math.Abs(fc[0].At-60) > 1e-9 || math.Abs(fc[1].At-70) > 1e-9 {
		t.Errorf("forecast times = %v,%v", fc[0].At, fc[1].At)
	}
	// Forecast catches up when asked far in the future.
	fc = p.Forecast(95, 10)
	if len(fc) != 1 || math.Abs(fc[0].At-100) > 1e-9 {
		t.Errorf("catch-up forecast = %v", fc)
	}
}

func TestInterArrivalMinSamples(t *testing.T) {
	p := NewInterArrival()
	p.Observe(0, "x")
	p.Observe(10, "x")
	if fc := p.Forecast(10, 100); len(fc) != 0 {
		t.Errorf("forecast with %d samples = %v", 2, fc)
	}
}

func TestInterArrivalIrregular(t *testing.T) {
	p := NewInterArrival()
	times := []float64{0, 8, 20, 29, 41}
	for _, at := range times {
		p.Observe(at, "y")
	}
	gap := p.expectedGap("y")
	if gap < 8 || gap > 13 {
		t.Errorf("smoothed gap = %v, want within the observed band", gap)
	}
}

// Proactive admission: with a predicted arrival imminent, a job set that
// saturates the machine across the predicted window is rejected even
// though it is feasible in isolation; the reactive scheduler admits it.
func TestProactiveAdmission(t *testing.T) {
	plat := motiv.Platform()
	lib := motiv.Library()
	pred := NewInterArrival()
	// λ2 arrives like clockwork every 10 s → next predicted at t=50.
	for i := 0; i < 5; i++ {
		pred.Observe(float64(i)*10, "lambda2")
	}
	pro := &Scheduler{Inner: core.New(), Pred: pred, Lib: lib, Horizon: 15, DeadlineFactor: 1}

	// Two λ1 jobs whose chained tight deadlines force back-to-back
	// 2L2B runs occupying everything until ≈50.4: the λ2 predicted at
	// t=50 (phantom deadline 52, fastest remaining 2 s) cannot fit.
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Arrival: 41, Deadline: 41 + 4.75, Remaining: 1},
		{ID: 2, Table: motiv.Lambda1(), Arrival: 41, Deadline: 41 + 9.45, Remaining: 1},
	}
	if _, err := core.New().Schedule(jobs, plat, 41); err != nil {
		t.Fatalf("reactive baseline rejected: %v", err)
	}
	if _, err := pro.Schedule(jobs, plat, 41); !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("proactive admission err = %v, want ErrInfeasible", err)
	}

	// With a relaxed second deadline the jobs can yield to the
	// predicted λ2 and everything fits: the proactive scheduler admits.
	jobs[1].Deadline = 41 + 40
	k, err := pro.Schedule(jobs, plat, 41)
	if err != nil {
		t.Fatalf("proactive rejected relaxed job: %v", err)
	}
	// The actual plan contains no phantom placements.
	for _, seg := range k.Segments {
		for _, p := range seg.Placements {
			if p.JobID >= phantomIDBase {
				t.Error("phantom leaked into the schedule")
			}
		}
	}
	if err := k.Validate(plat, jobs, 41); err != nil {
		t.Fatal(err)
	}
}

// Without observations the wrapper behaves exactly like the inner
// scheduler.
func TestProactiveNoForecast(t *testing.T) {
	plat := motiv.Platform()
	pro := &Scheduler{Inner: core.New(), Pred: NewInterArrival(), Lib: motiv.Library()}
	jobs := job.Set(motiv.ScenarioS1AtT1())
	k, err := pro.Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k.Energy(jobs)-base.Energy(jobs)) > 1e-12 {
		t.Error("wrapper changed the schedule without forecasts")
	}
	if pro.Name() != "MMKP-MDF+predict" {
		t.Errorf("name = %q", pro.Name())
	}
}

func TestProactiveMisconfigured(t *testing.T) {
	pro := &Scheduler{}
	if _, err := pro.Schedule(nil, motiv.Platform(), 0); err == nil {
		t.Error("unconfigured wrapper scheduled")
	}
}
