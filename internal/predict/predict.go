// Package predict adds workload prediction to the runtime manager — the
// proactive dimension of Niknafs et al. (DAC'19), whose reactive
// multi-threaded generalization is the paper's contribution. An arrival
// predictor learns per-application inter-arrival statistics online; a
// proactive scheduler wrapper admits a request only if the resulting
// schedule would still leave room for the arrivals predicted within a
// look-ahead horizon.
package predict

import (
	"fmt"
	"math"
	"sort"

	"adaptrm/internal/job"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Predicted is one anticipated arrival.
type Predicted struct {
	// App names the application variant expected to arrive.
	App string
	// At is the expected arrival time.
	At float64
}

// Predictor learns from observed arrivals and forecasts upcoming ones.
type Predictor interface {
	// Observe records an arrival of app at time t.
	Observe(t float64, app string)
	// Forecast returns expected arrivals in (t, t+horizon], soonest
	// first.
	Forecast(t, horizon float64) []Predicted
}

// InterArrival is an exponential-moving-average inter-arrival predictor:
// per application it tracks the smoothed gap between arrivals and
// forecasts the next arrival at lastSeen + gap. Applications observed
// fewer than MinSamples times are never forecast.
type InterArrival struct {
	// Alpha is the EMA smoothing factor in (0,1]; higher weights recent
	// gaps more.
	Alpha float64
	// MinSamples is the number of arrivals needed before forecasting.
	MinSamples int

	state map[string]*iaState
}

type iaState struct {
	last    float64
	gap     float64
	samples int
}

// NewInterArrival returns a predictor with α=0.3 and MinSamples=3.
func NewInterArrival() *InterArrival {
	return &InterArrival{Alpha: 0.3, MinSamples: 3, state: map[string]*iaState{}}
}

// Observe implements Predictor.
func (p *InterArrival) Observe(t float64, app string) {
	if p.state == nil {
		p.state = map[string]*iaState{}
	}
	s := p.state[app]
	if s == nil {
		p.state[app] = &iaState{last: t, samples: 1}
		return
	}
	gap := t - s.last
	if gap > 0 {
		if s.samples == 1 {
			s.gap = gap
		} else {
			s.gap = p.Alpha*gap + (1-p.Alpha)*s.gap
		}
	}
	s.last = t
	s.samples++
}

// Forecast implements Predictor.
func (p *InterArrival) Forecast(t, horizon float64) []Predicted {
	var out []Predicted
	for app, s := range p.state {
		if s.samples < p.MinSamples || s.gap <= 0 {
			continue
		}
		next := s.last + s.gap
		for next <= t {
			next += s.gap // catch up to the present
		}
		for next <= t+horizon {
			out = append(out, Predicted{App: app, At: next})
			next += s.gap
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].App < out[j].App
	})
	return out
}

// Scheduler wraps an inner scheduler with proactive admission: a job set
// is schedulable only if it remains schedulable together with phantom
// jobs standing in for the predicted arrivals. The returned schedule
// contains only the real jobs (phantoms gate admission, they are not
// executed).
//
// Approximation: the scheduling model has no release times, so a phantom
// may be placed before its predicted arrival. The admission check is
// therefore a capacity advisory over the look-ahead window, not an exact
// timing guarantee — sufficient for the acceptance-rate trade-off this
// extension studies, and the same simplification Niknafs et al. make
// when folding predicted jobs into the current problem instance.
type Scheduler struct {
	// Inner is the scheduling algorithm (e.g. MMKP-MDF).
	Inner sched.Scheduler
	// Pred forecasts arrivals; it must be fed via Observe by the
	// runtime (see desim's Predictor option).
	Pred Predictor
	// Lib resolves forecast application names to tables.
	Lib *opset.Library
	// Horizon is the look-ahead window in seconds.
	Horizon float64
	// DeadlineFactor sets phantom deadlines to
	// arrival + factor × fastest execution time (default 2).
	DeadlineFactor float64
	// MaxPhantoms bounds how many predicted jobs are considered
	// (soonest first; default 2).
	MaxPhantoms int
	// Protect, when non-empty, restricts forecasting to the listed
	// applications: only their predicted arrivals gate admission.
	// Typical use: protect the firm periodic streams, let best-effort
	// bursty traffic compete reactively.
	Protect []string
}

// phantomIDBase offsets phantom job IDs beyond any realistic real ID.
const phantomIDBase = 1 << 30

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return s.Inner.Name() + "+predict" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if s.Inner == nil || s.Pred == nil || s.Lib == nil {
		return nil, fmt.Errorf("predict: scheduler not fully configured")
	}
	horizon := s.Horizon
	if horizon <= 0 {
		horizon = 30
	}
	factor := s.DeadlineFactor
	if factor <= 0 {
		factor = 2
	}
	maxPh := s.MaxPhantoms
	if maxPh <= 0 {
		maxPh = 2
	}
	phantoms := s.Pred.Forecast(t, horizon)
	if len(s.Protect) > 0 {
		kept := phantoms[:0]
		for _, ph := range phantoms {
			for _, app := range s.Protect {
				if ph.App == app {
					kept = append(kept, ph)
					break
				}
			}
		}
		phantoms = kept
	}
	if len(phantoms) > maxPh {
		phantoms = phantoms[:maxPh]
	}
	if len(phantoms) > 0 {
		trial := jobs.Clone()
		for i, ph := range phantoms {
			tbl := s.Lib.Get(ph.App)
			if tbl == nil {
				continue
			}
			// The phantom is modeled as if it were already here (its
			// arrival may precede the next activation), with the
			// deadline it would realistically carry.
			trial = append(trial, &job.Job{
				ID:        phantomIDBase + i,
				Table:     tbl,
				Arrival:   t,
				Deadline:  ph.At + tbl.FastestTime()*factor,
				Remaining: 1,
			})
		}
		if _, err := s.Inner.Schedule(trial, plat, t); err != nil {
			// Admitting would starve predicted arrivals: reject.
			return nil, sched.ErrInfeasible
		}
	}
	return s.Inner.Schedule(jobs, plat, t)
}

// expectedGap exposes the learned gap for tests.
func (p *InterArrival) expectedGap(app string) float64 {
	if s := p.state[app]; s != nil {
		return s.gap
	}
	return math.NaN()
}
