package anytime

import (
	"math"
	"sync/atomic"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/schedule"
)

// task returns a single-job refinement task with the given incumbent
// bound; the motivational lambda1 job's exact optimum is 8.90 J.
func task(incumbent float64) Task {
	return Task{
		Device:    0,
		Jobs:      job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 9, Remaining: 1}},
		Plat:      motiv.Platform(),
		Now:       0,
		Incumbent: incumbent,
	}
}

func TestTryStepRunsSearchAndHooks(t *testing.T) {
	var stored, swapped atomic.Int64
	r := New(Config{
		Store: func(_ Task, k *schedule.Schedule) {
			if k == nil {
				t.Error("Store called with nil schedule")
			}
			stored.Add(1)
		},
		Swap: func(_ Task, k *schedule.Schedule) {
			if stored.Load() == 0 {
				t.Error("Swap called before Store")
			}
			swapped.Add(1)
		},
	})
	if r.TryStep() {
		t.Error("TryStep on an empty queue reported work")
	}
	// A loose incumbent is beaten: both hooks fire.
	if !r.Enqueue(task(math.Inf(1))) {
		t.Fatal("enqueue refused")
	}
	// A tight incumbent (the exact optimum) is not beaten: no hooks.
	if !r.Enqueue(task(8.90)) {
		t.Fatal("enqueue refused")
	}
	for r.TryStep() {
	}
	if stored.Load() != 1 || swapped.Load() != 1 {
		t.Errorf("hooks fired store=%d swap=%d, want 1/1", stored.Load(), swapped.Load())
	}
	s := r.Stats()
	if s.Enqueued != 2 || s.Searches != 2 || s.Improved != 1 || s.NoImprovement != 1 {
		t.Errorf("stats = %+v", s)
	}
	r.Close()
}

func TestProbeSkips(t *testing.T) {
	r := New(Config{
		Probe: func(Task) bool { return true },
		Store: func(Task, *schedule.Schedule) { t.Error("Store despite probe skip") },
	})
	r.Enqueue(task(math.Inf(1)))
	for r.TryStep() {
	}
	if s := r.Stats(); s.Skipped != 1 || s.Searches != 0 {
		t.Errorf("stats = %+v, want 1 skipped, 0 searches", s)
	}
	r.Close()
}

func TestQueueBoundDropsNotBlocks(t *testing.T) {
	r := New(Config{Queue: 2})
	for i := 0; i < 5; i++ {
		r.Enqueue(task(math.Inf(1)))
	}
	if s := r.Stats(); s.Enqueued != 2 || s.Dropped != 3 {
		t.Errorf("stats = %+v, want 2 enqueued / 3 dropped", s)
	}
	if r.Pending() != 2 {
		t.Errorf("pending = %d, want 2", r.Pending())
	}
	r.Close()
}

// Close drains what background workers already hold, refuses further
// offers, and is idempotent.
func TestCloseSemantics(t *testing.T) {
	var improved atomic.Int64
	r := New(Config{Store: func(Task, *schedule.Schedule) { improved.Add(1) }})
	r.Start(2)
	for i := 0; i < 8; i++ {
		r.Enqueue(task(math.Inf(1)))
	}
	r.Close()
	r.Close() // idempotent
	if r.Enqueue(task(math.Inf(1))) {
		t.Error("enqueue accepted after close")
	}
	s := r.Stats()
	if got := s.Searches; got != 8 {
		t.Errorf("searches = %d, want all 8 drained by Close", got)
	}
	if improved.Load() != s.Improved {
		t.Errorf("store hook fired %d times for %d improvements", improved.Load(), s.Improved)
	}
	if s.Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the post-close offer)", s.Dropped)
	}
}
