// Package anytime closes the quality/latency gap between the MMKP-MDF
// heuristic and the EX-MEM exact search: admissions keep answering at
// heuristic latency with the heuristic's schedule as the incumbent,
// while a bounded background refinement pool re-solves the same problem
// exactly (exmem.ScheduleBudgeted) and offers any strictly cheaper
// schedule back to the device. The swap commit point lives in the
// runtime manager (rm.SwapSchedule), which re-validates the offer
// against the device's current state — a refinement that raced a clock
// advance, an admission or a cancellation simply dies there, so the
// pool needs no coordination with the shard workers beyond a bounded
// task queue.
//
// The refiner itself is deliberately passive about scheduling policy:
// it knows nothing about fleets, caches or events. The embedder wires
// three hooks — Probe (skip work whose exact result is already
// fleet-visible), Store (promote a refined schedule into the cache
// tiers) and Swap (offer it to the device) — and chooses between
// background workers (Start) and explicit stepping (TryStep), the
// latter giving tests a virtual-clock-deterministic drive.
package anytime

import (
	"errors"
	"sync"
	"sync/atomic"

	"adaptrm/internal/exmem"
	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedule"
)

// DefaultBudget is the per-search node budget when Config.Budget is
// zero: small enough that a refinement finishes in milliseconds on the
// paper's workload sizes, large enough to prove optimality for the 2–6
// job sets that dominate steady request streams.
const DefaultBudget = 2_000_000

// DefaultQueue is the pending-task capacity when Config.Queue is zero.
// The queue is intentionally shallow: a refinement for a stale problem
// is worthless, so under pressure dropping beats queueing.
const DefaultQueue = 64

// Task is one refinement unit: the scheduling problem exactly as the
// device saw it right after an admission, plus the incumbent energy the
// exact search must strictly beat. Jobs is a private clone — the
// refiner may read it from any goroutine.
type Task struct {
	// Device addresses the originating device for the Swap hook.
	Device int
	// Jobs is the admitted job set with its remaining ratios at Now.
	Jobs job.Set
	// Plat is the device's hardware model.
	Plat platform.Platform
	// Now is the virtual time the problem was captured at.
	Now float64
	// Incumbent is the remaining planned energy of the schedule in
	// force; only strictly cheaper exact schedules are reported.
	Incumbent float64
}

// Config wires a Refiner into its host.
type Config struct {
	// Budget caps the exact search's node count per task; zero means
	// DefaultBudget. A search that exhausts it keeps the incumbent.
	Budget int64
	// Queue bounds the pending tasks; zero means DefaultQueue. Enqueue
	// never blocks: offers beyond the bound are counted and dropped.
	Queue int
	// Probe, when set, reports whether an exact result for the task's
	// problem is already visible (e.g. in a shared cache tier); such
	// tasks are skipped without a search.
	Probe func(Task) bool
	// Store, when set, receives every strictly better exact schedule
	// for promotion into the cache tiers. Called before Swap, and even
	// when the subsequent swap offer loses its race — the schedule is a
	// valid exact solution of the captured problem regardless.
	Store func(Task, *schedule.Schedule)
	// Swap offers the refined schedule back to the device. The hook
	// must tolerate rejection (stale offers are the normal case under
	// load) and must not call back into the refiner.
	Swap func(Task, *schedule.Schedule)
}

// Stats counts refinement activity. All counters are cumulative and
// operational: with background workers their timing depends on
// goroutine interleaving (the deterministic test drive uses TryStep).
type Stats struct {
	// Enqueued counts accepted tasks, Dropped offers refused on a full
	// queue (or after Close).
	Enqueued, Dropped int64
	// Skipped counts tasks short-circuited by the Probe hook.
	Skipped int64
	// Searches counts exact searches run; Improved the subset that
	// found a strictly cheaper schedule, NoImprovement those that
	// proved the incumbent optimal, BudgetExhausted those cut off by
	// the node budget, Failed the searches ending in any other error.
	Searches, Improved, NoImprovement, BudgetExhausted, Failed int64
}

// Refiner is the bounded anytime refinement pool.
type Refiner struct {
	cfg   Config
	tasks chan Task

	mu     sync.Mutex // guards closed against Enqueue/Close races
	closed bool
	wg     sync.WaitGroup

	// stepMu serialises TryStep callers over one private solver.
	stepMu sync.Mutex
	step   *exmem.Scheduler

	enqueued, dropped, skipped                       atomic.Int64
	searches, improved, noImprove, budgetHit, failed atomic.Int64
}

// New builds a refiner. Start background workers with Start, or drive
// it explicitly with TryStep; both consume the same queue.
func New(cfg Config) *Refiner {
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	return &Refiner{cfg: cfg, tasks: make(chan Task, cfg.Queue)}
}

// Enqueue offers one task without ever blocking: false means the queue
// was full (or the refiner closed) and the task was dropped — the
// device simply keeps its heuristic schedule.
func (r *Refiner) Enqueue(t Task) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.dropped.Add(1)
		return false
	}
	select {
	case r.tasks <- t:
		r.enqueued.Add(1)
		return true
	default:
		r.dropped.Add(1)
		return false
	}
}

// Start launches n background workers (n < 1 starts one), each with a
// private solver so searches never contend on scratch state.
func (r *Refiner) Start(n int) {
	if n < 1 {
		n = 1
	}
	r.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer r.wg.Done()
			solver := exmem.NewWithOptions(exmem.Options{NodeLimit: r.cfg.Budget})
			for t := range r.tasks {
				r.run(solver, t)
			}
		}()
	}
}

// TryStep synchronously runs one queued task and reports whether there
// was one. It is the deterministic drive for tests: enqueue under a
// virtual clock, step explicitly, observe the swap. Safe alongside
// background workers (they race for the same queue).
func (r *Refiner) TryStep() bool {
	r.stepMu.Lock()
	defer r.stepMu.Unlock()
	select {
	case t, ok := <-r.tasks:
		if !ok {
			return false
		}
		if r.step == nil {
			r.step = exmem.NewWithOptions(exmem.Options{NodeLimit: r.cfg.Budget})
		}
		r.run(r.step, t)
		return true
	default:
		return false
	}
}

// run executes one task: probe, bounded exact search, promote, offer.
func (r *Refiner) run(solver *exmem.Scheduler, t Task) {
	if r.cfg.Probe != nil && r.cfg.Probe(t) {
		r.skipped.Add(1)
		return
	}
	r.searches.Add(1)
	k, err := solver.ScheduleBudgeted(t.Jobs, t.Plat, t.Now, t.Incumbent)
	switch {
	case err == nil:
		r.improved.Add(1)
		if r.cfg.Store != nil {
			r.cfg.Store(t, k)
		}
		if r.cfg.Swap != nil {
			r.cfg.Swap(t, k)
		}
	case errors.Is(err, exmem.ErrNoImprovement):
		r.noImprove.Add(1)
	case errors.Is(err, exmem.ErrBudget):
		r.budgetHit.Add(1)
	default:
		r.failed.Add(1)
	}
}

// Close stops accepting tasks and waits for the background workers to
// finish what is already queued. Idempotent.
func (r *Refiner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.tasks)
	r.mu.Unlock()
	r.wg.Wait()
}

// Pending reports the queued-task count (operational).
func (r *Refiner) Pending() int { return len(r.tasks) }

// Stats snapshots the activity counters.
func (r *Refiner) Stats() Stats {
	return Stats{
		Enqueued:        r.enqueued.Load(),
		Dropped:         r.dropped.Load(),
		Skipped:         r.skipped.Load(),
		Searches:        r.searches.Load(),
		Improved:        r.improved.Load(),
		NoImprovement:   r.noImprove.Load(),
		BudgetExhausted: r.budgetHit.Load(),
		Failed:          r.failed.Load(),
	}
}
