package kpn

// Synthetic stand-ins for the paper's three benchmark applications. The
// process counts match the paper (8, 8, 6); work distributions are
// unbalanced pipelines with fan-out stages, giving concave speedups that
// saturate below the full core count — the same qualitative behaviour
// Table II shows for the real applications.

// SpeakerRecognition returns an 8-process speaker-recognition pipeline
// (front-end → feature extraction fan-out → scoring → decision), after
// the PARMA-DITAM'19 dataflow implementation referenced by the paper.
func SpeakerRecognition() Graph {
	return Graph{
		Name: "speaker-recognition",
		Processes: []Process{
			{Name: "src", Work: 1.2},
			{Name: "preemph", Work: 2.8},
			{Name: "framing", Work: 3.6},
			{Name: "fft", Work: 9.5},
			{Name: "melbank", Work: 7.4},
			{Name: "dct", Work: 5.2},
			{Name: "gmm-score", Work: 11.8},
			{Name: "decision", Work: 1.5},
		},
		Channels: []Channel{
			{Src: "src", Dst: "preemph", MBytes: 18},
			{Src: "preemph", Dst: "framing", MBytes: 18},
			{Src: "framing", Dst: "fft", MBytes: 24},
			{Src: "fft", Dst: "melbank", MBytes: 30},
			{Src: "melbank", Dst: "dct", MBytes: 12},
			{Src: "dct", Dst: "gmm-score", MBytes: 8},
			{Src: "gmm-score", Dst: "decision", MBytes: 2},
		},
		StartupSec: 0.35,
	}
}

// AudioFilter returns the 8-process stereo frequency filter (split into
// left/right chains, after the SCOPES'17 Tetris benchmark set).
func AudioFilter() Graph {
	return Graph{
		Name: "audio-filter",
		Processes: []Process{
			{Name: "src", Work: 1.0},
			{Name: "split", Work: 1.6},
			{Name: "fft-l", Work: 6.8},
			{Name: "fft-r", Work: 6.8},
			{Name: "filter-l", Work: 4.9},
			{Name: "filter-r", Work: 4.9},
			{Name: "ifft", Work: 7.7},
			{Name: "sink", Work: 1.4},
		},
		Channels: []Channel{
			{Src: "src", Dst: "split", MBytes: 26},
			{Src: "split", Dst: "fft-l", MBytes: 13},
			{Src: "split", Dst: "fft-r", MBytes: 13},
			{Src: "fft-l", Dst: "filter-l", MBytes: 16},
			{Src: "fft-r", Dst: "filter-r", MBytes: 16},
			{Src: "filter-l", Dst: "ifft", MBytes: 16},
			{Src: "filter-r", Dst: "ifft", MBytes: 16},
			{Src: "ifft", Dst: "sink", MBytes: 26},
		},
		StartupSec: 0.25,
	}
}

// PedestrianRecognition returns the 6-process pedestrian-recognition
// pipeline (image pyramid → HOG features → SVM windows → merge),
// mirroring the Silexica-provided application of the paper.
func PedestrianRecognition() Graph {
	return Graph{
		Name: "pedestrian-recognition",
		Processes: []Process{
			{Name: "capture", Work: 2.2},
			{Name: "pyramid", Work: 6.4},
			{Name: "hog-a", Work: 10.6},
			{Name: "hog-b", Work: 10.6},
			{Name: "svm", Work: 13.9},
			{Name: "merge", Work: 1.8},
		},
		Channels: []Channel{
			{Src: "capture", Dst: "pyramid", MBytes: 42},
			{Src: "pyramid", Dst: "hog-a", MBytes: 21},
			{Src: "pyramid", Dst: "hog-b", MBytes: 21},
			{Src: "hog-a", Dst: "svm", MBytes: 9},
			{Src: "hog-b", Dst: "svm", MBytes: 9},
			{Src: "svm", Dst: "merge", MBytes: 3},
		},
		StartupSec: 0.45,
	}
}

// BenchmarkSuite returns the three applications of the paper's
// evaluation.
func BenchmarkSuite() []Graph {
	return []Graph{SpeakerRecognition(), AudioFilter(), PedestrianRecognition()}
}
