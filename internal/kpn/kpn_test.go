package kpn

import (
	"strings"
	"testing"
)

func TestBenchmarkSuiteValid(t *testing.T) {
	suite := BenchmarkSuite()
	if len(suite) != 3 {
		t.Fatalf("suite has %d graphs", len(suite))
	}
	wantProcs := map[string]int{
		"speaker-recognition":    8,
		"audio-filter":           8,
		"pedestrian-recognition": 6,
	}
	for _, g := range suite {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if want := wantProcs[g.Name]; len(g.Processes) != want {
			t.Errorf("%s: %d processes, want %d (paper)", g.Name, len(g.Processes), want)
		}
		if g.TotalWork() <= 0 || g.MaxProcessWork() <= 0 || g.TotalTraffic() <= 0 {
			t.Errorf("%s: degenerate aggregates", g.Name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Graph { return AudioFilter() }
	cases := []struct {
		name string
		mut  func(*Graph)
	}{
		{"no name", func(g *Graph) { g.Name = "" }},
		{"no processes", func(g *Graph) { g.Processes = nil }},
		{"unnamed process", func(g *Graph) { g.Processes[0].Name = "" }},
		{"duplicate process", func(g *Graph) { g.Processes[1].Name = g.Processes[0].Name }},
		{"zero work", func(g *Graph) { g.Processes[0].Work = 0 }},
		{"dangling channel", func(g *Graph) { g.Channels[0].Dst = "nope" }},
		{"self loop", func(g *Graph) { g.Channels[0].Dst = g.Channels[0].Src }},
		{"negative traffic", func(g *Graph) { g.Channels[0].MBytes = -1 }},
		{"negative startup", func(g *Graph) { g.StartupSec = -1 }},
	}
	for _, tc := range cases {
		g := base()
		tc.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestProcessIndex(t *testing.T) {
	g := SpeakerRecognition()
	if got := g.ProcessIndex("fft"); got < 0 || g.Processes[got].Name != "fft" {
		t.Errorf("ProcessIndex(fft) = %d", got)
	}
	if got := g.ProcessIndex("nope"); got != -1 {
		t.Errorf("ProcessIndex(nope) = %d", got)
	}
}

func TestDefaultVariants(t *testing.T) {
	vs := DefaultVariants()
	if len(vs) != 3 {
		t.Fatalf("%d variants", len(vs))
	}
	names := []string{}
	for i, v := range vs {
		names = append(names, v.Name)
		if v.ComputeScale <= 0 || v.TrafficScale <= 0 {
			t.Errorf("variant %d has bad scales", i)
		}
		if i > 0 && vs[i-1].ComputeScale >= v.ComputeScale {
			t.Error("variants not ordered by compute scale")
		}
	}
	if strings.Join(names, ",") != "small,medium,large" {
		t.Errorf("variant names = %v", names)
	}
}
