// Package kpn models dataflow (KPN-style) applications: processes with
// computational work connected by FIFO channels. The paper benchmarks
// three proprietary dataflow applications (speaker recognition with 8
// processes, an audio stereo-frequency filter with 8 processes, and
// pedestrian recognition with 6 processes, provided by Silexica); this
// package provides synthetic graphs with the same process counts and a
// realistic unbalanced work distribution, so that the virtual platform
// and DSE produce operating-point tables with the shape of Table II.
package kpn

import (
	"errors"
	"fmt"
)

// Process is one Kahn process.
type Process struct {
	// Name identifies the process within its graph.
	Name string
	// Work is the computational load of the process over one complete
	// run at the reference input size, in giga-operations.
	Work float64
}

// Channel is a FIFO connection between two processes.
type Channel struct {
	// Src and Dst name the endpoint processes.
	Src, Dst string
	// MBytes is the total traffic over one complete run at the
	// reference input size.
	MBytes float64
}

// Graph is a dataflow application.
type Graph struct {
	// Name identifies the application (e.g. "audio-filter").
	Name string
	// Processes lists the Kahn processes.
	Processes []Process
	// Channels lists the FIFO connections.
	Channels []Channel
	// StartupSec is a fixed sequential startup/teardown overhead per
	// run (input loading, graph construction) that does not parallelize.
	StartupSec float64
}

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return errors.New("kpn: graph has no name")
	}
	if len(g.Processes) == 0 {
		return fmt.Errorf("kpn: graph %s has no processes", g.Name)
	}
	seen := make(map[string]bool, len(g.Processes))
	for _, p := range g.Processes {
		if p.Name == "" {
			return fmt.Errorf("kpn: graph %s has unnamed process", g.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("kpn: graph %s duplicates process %q", g.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Work <= 0 {
			return fmt.Errorf("kpn: graph %s process %q has non-positive work", g.Name, p.Name)
		}
	}
	for _, c := range g.Channels {
		if !seen[c.Src] || !seen[c.Dst] {
			return fmt.Errorf("kpn: graph %s channel %s→%s references unknown process", g.Name, c.Src, c.Dst)
		}
		if c.Src == c.Dst {
			return fmt.Errorf("kpn: graph %s has self-loop on %q", g.Name, c.Src)
		}
		if c.MBytes < 0 {
			return fmt.Errorf("kpn: graph %s channel %s→%s has negative traffic", g.Name, c.Src, c.Dst)
		}
	}
	if g.StartupSec < 0 {
		return fmt.Errorf("kpn: graph %s has negative startup", g.Name)
	}
	return nil
}

// TotalWork returns the summed work of all processes (giga-operations).
func (g *Graph) TotalWork() float64 {
	w := 0.0
	for _, p := range g.Processes {
		w += p.Work
	}
	return w
}

// MaxProcessWork returns the heaviest single process, the serial
// bottleneck that limits parallel speedup.
func (g *Graph) MaxProcessWork() float64 {
	max := 0.0
	for _, p := range g.Processes {
		if p.Work > max {
			max = p.Work
		}
	}
	return max
}

// TotalTraffic returns the summed channel traffic (MBytes).
func (g *Graph) TotalTraffic() float64 {
	t := 0.0
	for _, c := range g.Channels {
		t += c.MBytes
	}
	return t
}

// ProcessIndex returns the index of the named process, or -1.
func (g *Graph) ProcessIndex(name string) int {
	for i, p := range g.Processes {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Variant is an input configuration of an application. Work scales with
// ComputeScale, channel traffic with TrafficScale; the startup overhead
// is fixed, which differentiates the Pareto fronts of small and large
// inputs (small inputs are relatively more serial).
type Variant struct {
	// Name labels the input size (e.g. "small").
	Name string
	// ComputeScale multiplies process work.
	ComputeScale float64
	// TrafficScale multiplies channel traffic.
	TrafficScale float64
}

// DefaultVariants returns the small/medium/large input sizes used by the
// synthetic benchmark suite.
func DefaultVariants() []Variant {
	return []Variant{
		{Name: "small", ComputeScale: 0.45, TrafficScale: 0.55},
		{Name: "medium", ComputeScale: 1.0, TrafficScale: 1.0},
		{Name: "large", ComputeScale: 2.1, TrafficScale: 1.8},
	}
}
