// Package lagrange implements the MMKP-LR baseline of the paper's
// evaluation, modeled after the Lagrangian-relaxation runtime manager of
// Wildermann et al. (ISORCW'15).
//
// Per mapping segment, the scheduler:
//
//  1. solves the Lagrangian relaxation of the MMKP over the alive jobs
//     with a subgradient method (bounded at 100 iterations), producing
//     resource-price multipliers λ;
//  2. greedily maps jobs in increasing order of their minimum λ-cost
//     (cost = remaining energy + λ·θ), trying each job's configurations
//     in increasing cost order, accepting the first whose resources fit
//     and which passes the optimistic deadline check: the job either
//     finishes on this configuration in time, or can be reconfigured to
//     its fastest configuration at the (currently expected) end of the
//     segment and still meet its deadline;
//  3. cuts the segment at the first job completion and repeats.
//
// The analysis scope is thus a single mapping segment, which is precisely
// the limitation the paper's MMKP-MDF removes; the evaluation shows LR
// pays for it with 13–19% worse energy.
package lagrange

import (
	"math"
	"sort"

	"adaptrm/internal/job"
	"adaptrm/internal/mmkp"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// DefaultIterations is the subgradient iteration bound used in the paper.
const DefaultIterations = 100

// Scheduler is the MMKP-LR scheduler.
type Scheduler struct {
	iters int
}

// New returns an MMKP-LR scheduler with the paper's iteration bound.
func New() *Scheduler { return &Scheduler{iters: DefaultIterations} }

// NewWithIterations allows tuning the subgradient bound (for ablations).
func NewWithIterations(n int) *Scheduler {
	if n <= 0 {
		n = DefaultIterations
	}
	return &Scheduler{iters: n}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "MMKP-LR" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	cap := plat.Capacity()
	k := &schedule.Schedule{}
	alive := jobs.Clone()
	cur := t
	for len(alive) > 0 {
		// A job that can no longer meet its deadline even alone on its
		// fastest point dooms the whole set: reject.
		for _, j := range alive {
			if !j.Feasible(cur) {
				return nil, sched.ErrInfeasible
			}
		}
		lambda := s.multipliers(alive, cap)
		type pick struct {
			j  *job.Job
			pt int
		}
		// Greedy mapping in increasing order of minimum λ-cost.
		order := make([]*job.Job, len(alive))
		copy(order, alive)
		minCost := make(map[int]float64, len(alive))
		for _, j := range alive {
			best := math.Inf(1)
			for _, p := range j.Table.Points {
				if c := s.cost(j, p, lambda); c < best {
					best = c
				}
			}
			minCost[j.ID] = best
		}
		sort.SliceStable(order, func(a, b int) bool {
			if minCost[order[a].ID] != minCost[order[b].ID] {
				return minCost[order[a].ID] < minCost[order[b].ID]
			}
			return order[a].ID < order[b].ID
		})
		free := cap.Clone()
		dtMin := math.Inf(1) // expected segment length so far
		var picks []pick
		for _, j := range order {
			idxs := make([]int, j.Table.Len())
			for i := range idxs {
				idxs[i] = i
			}
			sort.SliceStable(idxs, func(a, b int) bool {
				return s.cost(j, j.Table.Points[idxs[a]], lambda) <
					s.cost(j, j.Table.Points[idxs[b]], lambda)
			})
			fastest := j.Table.FastestTime()
			for _, pi := range idxs {
				p := j.Table.Points[pi]
				if !p.Alloc.Fits(free) {
					continue
				}
				r := p.RemainingTime(j.Remaining)
				if r <= dtMin+schedule.Eps {
					// The job would end the segment itself: it must meet
					// its deadline on this configuration directly.
					if cur+r > j.Deadline+schedule.Eps {
						continue
					}
				} else {
					// Optimistic check: run this configuration until the
					// currently expected segment end, then switch to the
					// fastest configuration for the rest.
					rest := j.Remaining - dtMin/p.Time
					if rest < 0 {
						rest = 0
					}
					finish := cur + dtMin + fastest*rest
					if finish > j.Deadline+schedule.Eps {
						continue
					}
				}
				picks = append(picks, pick{j: j, pt: pi})
				free.SubInPlace(p.Alloc)
				if r < dtMin {
					dtMin = r
				}
				break
			}
		}
		if len(picks) == 0 {
			// Nobody could be mapped: the segment cannot make progress.
			return nil, sched.ErrInfeasible
		}
		// The segment ends at the first completion among mapped jobs.
		dt := math.Inf(1)
		for _, p := range picks {
			r := p.j.Table.Points[p.pt].RemainingTime(p.j.Remaining)
			if r < dt {
				dt = r
			}
		}
		seg := schedule.Segment{Start: cur, End: cur + dt}
		for _, p := range picks {
			seg.Placements = append(seg.Placements, schedule.Placement{JobID: p.j.ID, Point: p.pt})
		}
		sort.Slice(seg.Placements, func(a, b int) bool {
			return seg.Placements[a].JobID < seg.Placements[b].JobID
		})
		if err := k.Append(seg); err != nil {
			return nil, err
		}
		cur += dt
		// Advance progress, retire finished jobs, verify their deadlines.
		var next job.Set
		mapped := make(map[int]int, len(picks))
		for _, p := range picks {
			mapped[p.j.ID] = p.pt
		}
		for _, j := range alive {
			pi, ran := mapped[j.ID]
			if !ran {
				next = append(next, j)
				continue
			}
			pt := j.Table.Points[pi]
			j.Remaining -= dt / pt.Time
			if j.Remaining <= schedule.Eps {
				if cur > j.Deadline+1e-6 {
					return nil, sched.ErrInfeasible
				}
				continue
			}
			next = append(next, j)
		}
		alive = next
	}
	k.Normalize()
	return k, nil
}

// cost is the λ-adjusted configuration cost: remaining energy plus priced
// resources.
func (s *Scheduler) cost(j *job.Job, p opset.Point, lambda []float64) float64 {
	c := p.RemainingEnergy(j.Remaining)
	for d, n := range p.Alloc {
		c += lambda[d] * float64(n)
	}
	return c
}

// multipliers prices the platform resources by solving the Lagrangian
// relaxation over all alive jobs (values are negated remaining energies).
func (s *Scheduler) multipliers(alive job.Set, cap platform.Alloc) []float64 {
	prob := &mmkp.Problem{Capacity: make([]float64, len(cap))}
	for d, c := range cap {
		prob.Capacity[d] = float64(c)
	}
	for _, j := range alive {
		items := make([]mmkp.Item, 0, j.Table.Len())
		for _, p := range j.Table.Points {
			w := make([]float64, len(cap))
			for d, c := range p.Alloc {
				w[d] = float64(c)
			}
			items = append(items, mmkp.Item{Value: -p.RemainingEnergy(j.Remaining), Weight: w})
		}
		prob.Groups = append(prob.Groups, items)
	}
	res := prob.SolveLR(s.iters)
	if res.Lambda == nil {
		return make([]float64, len(cap))
	}
	return res.Lambda
}
