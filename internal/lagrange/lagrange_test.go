package lagrange

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/core"
	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/sched"
)

func TestName(t *testing.T) {
	if New().Name() != "MMKP-LR" {
		t.Error("name wrong")
	}
	if NewWithIterations(0).iters != DefaultIterations {
		t.Error("iteration clamp wrong")
	}
	if NewWithIterations(7).iters != 7 {
		t.Error("iteration override wrong")
	}
}

// A single job must get the same energy-optimal point as MMKP-MDF (the
// paper's Table IV: ratio 1.0000 for one job).
func TestSingleJobMatchesMDF(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 9, Remaining: 1}}
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.Energy(jobs); math.Abs(got-8.90) > 1e-9 {
		t.Errorf("energy = %v, want 8.90", got)
	}
}

// On scenario S1 the single-segment scope of LR must cost energy relative
// to MMKP-MDF's global scope (the core claim of the paper).
func TestS1WorseThanMDF(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	lr, err := New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	mdf, err := core.New().Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Energy(jobs) < mdf.Energy(jobs)-1e-9 {
		t.Errorf("LR energy %v beats MDF %v on S1; expected the opposite",
			lr.Energy(jobs), mdf.Energy(jobs))
	}
}

// LR must still reject workloads that are infeasible outright.
func TestInfeasibleRejected(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Deadline: 1, Remaining: 1},
	}
	_, err := New().Schedule(jobs, motiv.Platform(), 0)
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	jobs = job.Set{
		{ID: 1, Table: motiv.Lambda2(), Deadline: 2, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Deadline: 2, Remaining: 1},
	}
	_, err = New().Schedule(jobs, motiv.Platform(), 0)
	if !errors.Is(err, sched.ErrInfeasible) {
		t.Errorf("two-rush err = %v, want ErrInfeasible", err)
	}
}

// Valid schedules on a mixed 3-job set, and no mutation of inputs.
func TestThreeJobsValidNoMutation(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Arrival: 0, Deadline: 40, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Arrival: 0, Deadline: 25, Remaining: 0.6},
		{ID: 3, Table: motiv.Lambda2(), Arrival: 0, Deadline: 30, Remaining: 1},
	}
	before := jobs.Clone()
	plat := motiv.Platform()
	k, err := New().Schedule(jobs, plat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 2); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Remaining != before[i].Remaining {
			t.Errorf("job %d mutated", jobs[i].ID)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := New().Schedule(nil, motiv.Platform(), 0); err == nil {
		t.Error("empty set accepted")
	}
}

// Determinism: repeated runs produce identical schedules.
func TestDeterminism(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	a, err1 := New().Schedule(jobs, plat, 1)
	b, err2 := New().Schedule(jobs, plat, 1)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.String() != b.String() {
		t.Error("non-deterministic LR schedules")
	}
}
