// Package textplot renders the paper's figures as ASCII charts for the
// command-line tools: grouped bar charts (Fig. 2), S-curve line plots
// (Fig. 3) and log-scale boxplots (Fig. 4).
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarGroup is one group of bars (e.g. all schedulers at one job count).
type BarGroup struct {
	Title string
	Bars  []Bar
}

// BarChart renders horizontal grouped bars scaled to width characters.
// Values are annotated with the given format (e.g. "%.1f%%").
func BarChart(w io.Writer, title string, groups []BarGroup, width int, format string) {
	if width < 10 {
		width = 10
	}
	max := 0.0
	for _, g := range groups {
		for _, b := range g.Bars {
			if b.Value > max {
				max = b.Value
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	fmt.Fprintln(w, title)
	for _, g := range groups {
		fmt.Fprintf(w, "%s\n", g.Title)
		for _, b := range g.Bars {
			n := int(math.Round(b.Value / max * float64(width)))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "  %-12s |%-*s| "+format+"\n",
				b.Label, width, strings.Repeat("█", n), b.Value)
		}
	}
}

// Series is one named curve of a line plot.
type Series struct {
	Name   string
	Values []float64 // y values; x is the index
	Symbol byte
}

// LinePlot renders curves on a width×height character grid. The y-range
// spans [ymin, ymax]; when ymin==ymax the range is derived from the data.
func LinePlot(w io.Writer, title string, series []Series, width, height int, ymin, ymax float64) {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 {
		fmt.Fprintln(w, title+" (no data)")
		return
	}
	if ymin == ymax {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Values {
				if v < ymin {
					ymin = v
				}
				if v > ymax {
					ymax = v
				}
			}
		}
		if ymin == ymax {
			ymax = ymin + 1
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		sym := s.Symbol
		if sym == 0 {
			sym = '*'
		}
		for i, v := range s.Values {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			yf := (v - ymin) / (ymax - ymin)
			if yf < 0 {
				yf = 0
			}
			if yf > 1 {
				yf = 1
			}
			y := height - 1 - int(math.Round(yf*float64(height-1)))
			grid[y][x] = sym
		}
	}
	fmt.Fprintln(w, title)
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%.2f", ymax)
		case height - 1:
			label = fmt.Sprintf("%.2f", ymin)
		}
		fmt.Fprintf(w, "%8s |%s|\n", label, row)
	}
	legend := make([]string, 0, len(series))
	for _, s := range series {
		sym := s.Symbol
		if sym == 0 {
			sym = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", sym, s.Name))
	}
	fmt.Fprintf(w, "%8s  %s\n", "", strings.Join(legend, "  "))
}

// BoxRow is one row of a log-scale boxplot chart.
type BoxRow struct {
	Label                 string
	Min, Q1, Med, Q3, Max float64
}

// LogBoxplot renders rows on a shared log10 x-axis, in the style of
// Fig. 4 (search-time distributions). Non-positive values are clamped to
// the smallest positive value shown.
func LogBoxplot(w io.Writer, title string, rows []BoxRow, width int) {
	if width < 20 {
		width = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		if r.Min > 0 && r.Min < lo {
			lo = r.Min
		}
		if r.Max > hi {
			hi = r.Max
		}
	}
	if math.IsInf(lo, 1) || hi <= 0 {
		fmt.Fprintln(w, title+" (no data)")
		return
	}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	if lhi-llo < 1e-9 {
		lhi = llo + 1
	}
	pos := func(v float64) int {
		if v <= 0 {
			v = lo
		}
		p := (math.Log10(v) - llo) / (lhi - llo)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return int(math.Round(p * float64(width-1)))
	}
	fmt.Fprintln(w, title)
	for _, r := range rows {
		line := []byte(strings.Repeat(" ", width))
		for x := pos(r.Min); x <= pos(r.Max); x++ {
			line[x] = '-'
		}
		for x := pos(r.Q1); x <= pos(r.Q3); x++ {
			line[x] = '='
		}
		line[pos(r.Med)] = '|'
		fmt.Fprintf(w, "%-16s [%s]\n", r.Label, line)
	}
	fmt.Fprintf(w, "%-16s  %-*s%s\n", "", width-8,
		fmt.Sprintf("%.2e", lo), fmt.Sprintf("%.2e", hi))
}
