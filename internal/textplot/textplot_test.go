package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	groups := []BarGroup{
		{Title: "1 job", Bars: []Bar{{"EX-MEM", 82.9}, {"MMKP-MDF", 82.9}}},
		{Title: "4 jobs", Bars: []Bar{{"EX-MEM", 61.2}, {"MMKP-MDF", 47.1}}},
	}
	BarChart(&buf, "Scheduling rate", groups, 40, "%.1f%%")
	out := buf.String()
	for _, want := range []string{"Scheduling rate", "1 job", "4 jobs", "EX-MEM", "82.9%", "47.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The 61.2 bar must be longer than the 47.1 bar.
	lines := strings.Split(out, "\n")
	countBlocks := func(s string) int { return strings.Count(s, "█") }
	var ex, mdf int
	for _, l := range lines {
		if strings.Contains(l, "EX-MEM") && strings.Contains(l, "61.2") {
			ex = countBlocks(l)
		}
		if strings.Contains(l, "MMKP-MDF") && strings.Contains(l, "47.1") {
			mdf = countBlocks(l)
		}
	}
	if ex <= mdf {
		t.Errorf("bar lengths not proportional: %d vs %d", ex, mdf)
	}
	// Degenerate input must not panic.
	BarChart(&buf, "empty", nil, 5, "%.0f")
}

func TestLinePlot(t *testing.T) {
	var buf bytes.Buffer
	LinePlot(&buf, "S-curves", []Series{
		{Name: "MMKP-MDF", Values: []float64{1, 1, 1.02, 1.1}, Symbol: 'm'},
		{Name: "MMKP-LR", Values: []float64{1, 1.2, 1.4, 2.0}, Symbol: 'l'},
	}, 40, 10, 0, 0)
	out := buf.String()
	for _, want := range []string{"S-curves", "m=MMKP-MDF", "l=MMKP-LR", "m", "l"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 12 { // title + 10 rows + legend
		t.Errorf("plot has %d lines", lines)
	}
	// No data.
	buf.Reset()
	LinePlot(&buf, "empty", nil, 10, 5, 0, 0)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty plot not flagged")
	}
	// Constant series must not divide by zero.
	buf.Reset()
	LinePlot(&buf, "const", []Series{{Name: "c", Values: []float64{2, 2}}}, 10, 5, 0, 0)
	if buf.Len() == 0 {
		t.Error("constant series rendered nothing")
	}
}

func TestLogBoxplot(t *testing.T) {
	var buf bytes.Buffer
	rows := []BoxRow{
		{Label: "EX-MEM/4", Min: 0.01, Q1: 1, Med: 22, Q3: 100, Max: 2550},
		{Label: "MMKP-MDF/4", Min: 0.001, Q1: 0.003, Med: 0.005, Q3: 0.008, Max: 0.02},
	}
	LogBoxplot(&buf, "Search time", rows, 50)
	out := buf.String()
	for _, want := range []string{"Search time", "EX-MEM/4", "MMKP-MDF/4", "=", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Median markers must be ordered on the log axis: EX-MEM's median
	// (22s) far right of MDF's (5ms).
	var exPos, mdfPos int
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "EX-MEM/4") {
			exPos = strings.Index(l, "|")
		}
		if strings.Contains(l, "MMKP-MDF/4") {
			mdfPos = strings.Index(l, "|")
		}
	}
	if exPos <= mdfPos {
		t.Errorf("log axis ordering wrong: %d vs %d", exPos, mdfPos)
	}
	buf.Reset()
	LogBoxplot(&buf, "empty", nil, 30)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty boxplot not flagged")
	}
}
