package sched

import (
	"errors"
	"math/rand"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
)

// Randomized PackEDF check: for arbitrary job sets and arbitrary (not
// necessarily sensible) point assignments, PackEDF either reports
// infeasibility or returns a schedule satisfying the full constraint
// system for the assigned jobs.
func TestPackEDFFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	plat := motiv.Platform()
	tables := []*opset.Table{motiv.Lambda1(), motiv.Lambda2()}
	rounds := 400
	if testing.Short() {
		rounds = 80
	}
	for round := 0; round < rounds; round++ {
		n := 1 + rng.Intn(4)
		jobs := make(job.Set, 0, n)
		asg := Assignment{}
		for i := 0; i < n; i++ {
			tbl := tables[rng.Intn(len(tables))]
			rho := 0.05 + rng.Float64()*0.95
			j := &job.Job{
				ID:        i + 1,
				Table:     tbl,
				Deadline:  0.5 + rng.Float64()*40,
				Remaining: rho,
			}
			jobs = append(jobs, j)
			if rng.Float64() < 0.85 { // some jobs stay unassigned
				asg[j.ID] = rng.Intn(tbl.Len())
			}
		}
		k, err := PackEDF(jobs, asg, plat, 0)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("round %d: unexpected error: %v", round, err)
			}
			continue
		}
		// Validate against the assigned subset only.
		sub := make(job.Set, 0, len(asg))
		for _, j := range jobs {
			if _, ok := asg[j.ID]; ok {
				sub = append(sub, j)
			}
		}
		if len(sub) == 0 {
			if !k.IsEmpty() {
				t.Fatalf("round %d: schedule for empty assignment", round)
			}
			continue
		}
		if verr := k.Validate(plat, sub, 0); verr != nil {
			t.Fatalf("round %d: invalid schedule: %v\nassignment: %v\nschedule:\n%s",
				round, verr, asg, k)
		}
	}
}
