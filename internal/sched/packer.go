package sched

import (
	"fmt"
	"math"
	"slices"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedule"
)

// Unassigned marks a job without a chosen operating point in a
// DenseAssignment.
const Unassigned int32 = -1

// invalidPoint marks a job whose map-form assignment carried a negative
// point index. Pack reports it as out of range, matching the historical
// PackEDF behaviour for such assignments.
const invalidPoint int32 = math.MinInt32

// DenseAssignment fixes one operating point per job, keyed by the job's
// position in the job.Set it was built for (not by job ID). Entry i holds
// the table index chosen for jobs[i], or Unassigned. The dense form is
// what the scheduler hot path uses: committing a trial point is a single
// store instead of a map clone, and the packer indexes it without
// hashing.
type DenseAssignment []int32

// NewDenseAssignment returns an all-unassigned dense assignment for n
// jobs.
func NewDenseAssignment(n int) DenseAssignment {
	d := make(DenseAssignment, n)
	d.Clear()
	return d
}

// Clear marks every job unassigned.
func (d DenseAssignment) Clear() {
	for i := range d {
		d[i] = Unassigned
	}
}

// Resize returns a cleared dense assignment of length n, reusing d's
// backing array when it is large enough.
func (d DenseAssignment) Resize(n int) DenseAssignment {
	if cap(d) < n {
		return NewDenseAssignment(n)
	}
	d = d[:n]
	d.Clear()
	return d
}

// Dense converts the map form to the dense form for the given job set,
// reusing buf when possible. Jobs absent from the map become Unassigned;
// negative map values become an invalid marker that Pack rejects as out
// of range (the historical PackEDF behaviour).
func (a Assignment) Dense(jobs job.Set, buf DenseAssignment) DenseAssignment {
	d := buf.Resize(len(jobs))
	for i, j := range jobs {
		if pt, ok := a[j.ID]; ok {
			if pt < 0 {
				d[i] = invalidPoint
			} else {
				d[i] = int32(pt)
			}
		}
	}
	return d
}

// pendingJob is one assigned job awaiting EDF placement.
type pendingJob struct {
	j  *job.Job
	pt int32
}

// packSeg is the packer's internal segment representation: the schedule
// segment plus its incrementally maintained resource-usage vector, so
// capacity checks never rescan placements against the job set.
type packSeg struct {
	start, end float64
	placements []schedule.Placement
	usage      platform.Alloc
}

// Packer builds EDF-packed schedules (Algorithm 2 of the paper) from
// reusable scratch buffers. A Packer amortises every allocation of the
// packing hot path: the pending-job list, the segment list, per-segment
// placement lists and per-segment usage vectors are all retained across
// Pack calls, so a warm Packer packs with zero heap allocations.
//
// The zero value is usable after Reset. A Packer is not safe for
// concurrent use; callers that share one across goroutines must
// serialise access (see core.Scheduler for the TryLock pattern).
type Packer struct {
	m       int
	cap     platform.Alloc
	pending []pendingJob
	segs    []packSeg
}

// NewPacker returns a packer targeting the platform.
func NewPacker(plat platform.Platform) *Packer {
	p := &Packer{}
	p.Reset(plat)
	return p
}

// Reset re-targets the packer at a platform, keeping all scratch
// buffers. It must be called before Pack when the platform changes.
func (p *Packer) Reset(plat platform.Platform) {
	m := plat.NumTypes()
	p.m = m
	if cap(p.cap) < m {
		p.cap = make(platform.Alloc, m)
	}
	p.cap = p.cap[:m]
	for i := 0; i < m; i++ {
		p.cap[i] = plat.Types[i].Count
	}
	p.segs = p.segs[:0]
	p.pending = p.pending[:0]
}

// grow extends the segment list by one, reusing the spare placement and
// usage backing arrays parked beyond the current length, and returns the
// new segment zeroed.
func (p *Packer) grow() *packSeg {
	if len(p.segs) < cap(p.segs) {
		p.segs = p.segs[:len(p.segs)+1]
	} else {
		p.segs = append(p.segs, packSeg{})
	}
	s := &p.segs[len(p.segs)-1]
	s.placements = s.placements[:0]
	if cap(s.usage) < p.m {
		s.usage = make(platform.Alloc, p.m)
	} else {
		s.usage = s.usage[:p.m]
	}
	for i := range s.usage {
		s.usage[i] = 0
	}
	return s
}

// split cuts segment si at absolute time cut, duplicating its placements
// and usage into both halves (the same semantics as schedule.Split, but
// against the packer's pooled buffers).
func (p *Packer) split(si int, cut float64) error {
	if s := &p.segs[si]; cut <= s.start+schedule.Eps || cut >= s.end-schedule.Eps {
		return fmt.Errorf("sched: split point %v not inside (%v, %v)", cut, s.start, s.end)
	}
	p.grow() // may reallocate p.segs; take pointers after
	spare := p.segs[len(p.segs)-1]
	copy(p.segs[si+2:], p.segs[si+1:len(p.segs)-1])
	first := &p.segs[si]
	spare.start, spare.end = cut, first.end
	spare.placements = append(spare.placements[:0], first.placements...)
	copy(spare.usage, first.usage)
	first.end = cut
	p.segs[si+1] = spare
	return nil
}

// appendTail adds a fresh tail segment holding a single placement. The
// feasibility checks mirror schedule.Append so pathological assignments
// fail the same way they always did.
func (p *Packer) appendTail(start, end float64, pl schedule.Placement, alloc platform.Alloc) error {
	if n := len(p.segs); n > 0 {
		if prev := p.segs[n-1].end; math.Abs(start-prev) > schedule.Eps {
			return fmt.Errorf("sched: appended segment starts at %v, schedule ends at %v", start, prev)
		}
		start = p.segs[n-1].end
	}
	if end <= start+schedule.Eps {
		return fmt.Errorf("sched: appended segment has non-positive duration [%v,%v)", start, end)
	}
	s := p.grow()
	s.start, s.end = start, end
	s.placements = append(s.placements, pl)
	s.usage.AddInPlace(alloc)
	return nil
}

// Pack implements Algorithm 2 of the paper (SCHEDULEJOBS) against the
// packer's scratch state: jobs with an assigned operating point are
// placed in EDF order into the earliest segments with spare capacity,
// splitting a segment when a job finishes inside it and appending fresh
// segments at the tail. It returns ErrInfeasible when some assigned job
// would miss its deadline.
//
// asg must have exactly one entry per job (position-keyed); jobs marked
// Unassigned do not participate. The result is held in scratch until the
// next Pack or Reset — materialise it with Schedule, or inspect success
// only (the MMKP-MDF trial loop does the latter and materialises once).
func (p *Packer) Pack(jobs job.Set, asg DenseAssignment, t float64) error {
	if len(asg) != len(jobs) {
		return fmt.Errorf("sched: dense assignment has %d entries for %d jobs", len(asg), len(jobs))
	}
	p.segs = p.segs[:0]
	p.pending = p.pending[:0]
	// Σ̃ ← jobs with configurations, EDF order.
	for i, j := range jobs {
		if asg[i] != Unassigned {
			p.pending = append(p.pending, pendingJob{j: j, pt: asg[i]})
		}
	}
	if len(p.pending) == 0 {
		return nil
	}
	slices.SortFunc(p.pending, func(a, b pendingJob) int {
		if a.j.Deadline != b.j.Deadline {
			if a.j.Deadline < b.j.Deadline {
				return -1
			}
			return 1
		}
		return a.j.ID - b.j.ID
	})
	te := t // end of the last segment
	for _, pj := range p.pending {
		j := pj.j
		ptIdx := int(pj.pt)
		if pj.pt < 0 || ptIdx >= j.Table.Len() {
			return fmt.Errorf("sched: job %d: point %d out of range", j.ID, ptIdx)
		}
		pt := j.Table.Points[ptIdx]
		rho := j.Remaining
		finish := math.NaN()
		// Walk existing segments in time order.
		for si := 0; si < len(p.segs) && rho > schedule.Eps; si++ {
			seg := &p.segs[si]
			if !pt.Alloc.FitsWith(seg.usage, p.cap) {
				continue
			}
			need := pt.RemainingTime(rho)
			dur := seg.end - seg.start
			if need >= dur-schedule.Eps {
				// Job spans the whole segment.
				seg.placements = append(seg.placements, schedule.Placement{JobID: j.ID, Point: ptIdx})
				seg.usage.AddInPlace(pt.Alloc)
				rho -= dur / pt.Time
				if rho < schedule.Eps {
					rho = 0
					finish = seg.end
				}
			} else {
				// Job finishes inside: split and occupy the first part.
				cut := seg.start + need
				if err := p.split(si, cut); err != nil {
					return fmt.Errorf("sched: packEDF split: %w", err)
				}
				first := &p.segs[si]
				first.placements = append(first.placements, schedule.Placement{JobID: j.ID, Point: ptIdx})
				first.usage.AddInPlace(pt.Alloc)
				rho = 0
				finish = first.end
			}
		}
		if rho > schedule.Eps {
			// Tail segment(s): the job runs to completion after te.
			need := pt.RemainingTime(rho)
			if err := p.appendTail(te, te+need, schedule.Placement{JobID: j.ID, Point: ptIdx}, pt.Alloc); err != nil {
				return fmt.Errorf("sched: packEDF append: %w", err)
			}
			te += need
			finish = te
		}
		if len(p.segs) > 0 {
			te = p.segs[len(p.segs)-1].end
		}
		if math.IsNaN(finish) || finish > j.Deadline+schedule.Eps {
			return ErrInfeasible
		}
	}
	return nil
}

// Schedule materialises the result of the last successful Pack as an
// independently owned schedule. The scratch buffers stay with the
// packer, so this is the only allocating step of a warm pack-and-return
// cycle.
func (p *Packer) Schedule() *schedule.Schedule {
	if len(p.segs) == 0 {
		return &schedule.Schedule{}
	}
	k := &schedule.Schedule{Segments: make([]schedule.Segment, len(p.segs))}
	for i := range p.segs {
		s := &p.segs[i]
		k.Segments[i] = schedule.Segment{
			Start:      s.start,
			End:        s.end,
			Placements: append([]schedule.Placement(nil), s.placements...),
		}
	}
	return k
}
