package sched

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedule"
)

func TestFuncAdapter(t *testing.T) {
	f := Func{ID: "X", F: func(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
		return nil, ErrInfeasible
	}}
	if f.Name() != "X" {
		t.Error("name wrong")
	}
	if _, err := f.Schedule(nil, motiv.Platform(), 0); !errors.Is(err, ErrInfeasible) {
		t.Error("adapter does not forward")
	}
}

func TestFeasiblePoints(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	j1 := jobs.ByID(1) // ρ=0.8113, δ=9
	// Without containers: five points meet the deadline at t=1 (2L1B,
	// 1L2B, 1L1B, 2L2B, 0L2B — see the paper's Section III analysis).
	pts := FeasiblePoints(j1, 1, nil)
	if len(pts) != 5 {
		t.Fatalf("feasible points = %d, want 5", len(pts))
	}
	// Energy-sorted: first must be 2L1B (ξ=8.90).
	if !j1.Table.Points[pts[0]].Alloc.Equal(platform.Alloc{2, 1}) {
		t.Errorf("best point %v, want 2L1B", j1.Table.Points[pts[0]].Alloc)
	}
	// Containers too small for anything: no points.
	tiny := platform.TimeVec{0.1, 0.1}
	if got := FeasiblePoints(j1, 1, tiny); len(got) != 0 {
		t.Errorf("tiny containers admit %d points", len(got))
	}
	// Containers fitting only the 2-little usage (no big seconds).
	noBig := platform.TimeVec{100, 0}
	for _, pi := range FeasiblePoints(j1, 1, noBig) {
		if j1.Table.Points[pi].Alloc[1] != 0 {
			t.Errorf("big-core point %v admitted without big capacity", j1.Table.Points[pi].Alloc)
		}
	}
}

// PackEDF reproduces Algorithm 2 on the motivational scenario: with both
// jobs fixed to 2L1B it must produce the Fig. 1(c) segment structure.
func TestPackEDFFig1c(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	p1 := jobs.ByID(1).Table.ByAlloc(platform.Alloc{2, 1})[0]
	p2 := jobs.ByID(2).Table.ByAlloc(platform.Alloc{2, 1})[0]
	asg := Assignment{1: p1, 2: p2}
	k, err := PackEDF(jobs, asg, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	if len(k.Segments) != 2 {
		t.Fatalf("segments = %d, want 2:\n%s", len(k.Segments), k)
	}
	// σ2 (EDF first) owns [1,4); σ1 runs [4, 8.30).
	if k.Segments[0].Find(2) < 0 || k.Segments[0].Find(1) >= 0 {
		t.Errorf("segment 0 wrong: %s", k)
	}
	if math.Abs(k.FinishTime(1)-(4+5.3*motiv.Rho1AtT1)) > 1e-9 {
		t.Errorf("σ1 finish = %v", k.FinishTime(1))
	}
}

// A job finishing strictly inside an existing segment must split it
// (lines 13–17 of Algorithm 2).
func TestPackEDFSplitsSegments(t *testing.T) {
	jobs := job.Set{
		{ID: 1, Table: motiv.Lambda1(), Deadline: 30, Remaining: 1},
		{ID: 2, Table: motiv.Lambda2(), Deadline: 29, Remaining: 1},
	}
	plat := motiv.Platform()
	// σ1 on 2L (τ=10.3), σ2 on 0L1B... λ2 0L1B τ=5: σ2 EDF-first makes
	// [0,5); σ1 needs 10.3 using little cores only → [0,5) has 2L free
	// alongside σ2's big core, σ1 occupies [0,5) and the tail, and σ2's
	// segment need not split. Instead fix σ2 slower than σ1 so σ1 ends
	// inside σ2's segment: σ1 on 2L2B (τ=4.7), σ2 on 1L (τ=10).
	p1 := jobs.ByID(1).Table.ByAlloc(platform.Alloc{2, 2})[0]
	p2 := jobs.ByID(2).Table.ByAlloc(platform.Alloc{1, 0})[0]
	// Give σ1 the later deadline so σ2 packs first.
	jobs.ByID(1).Deadline = 30
	jobs.ByID(2).Deadline = 12
	asg := Assignment{1: p1, 2: p2}
	k, err := PackEDF(jobs, asg, plat, 0)
	if err != nil {
		// 2L2B does not fit alongside 1L on a 2L2B machine; expected
		// infeasible in segment 0, σ1 appended after σ2's run instead.
		t.Fatalf("PackEDF failed: %v", err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	// σ1 cannot share with σ2 (little demand 2+1 > 2), so it must run
	// after σ2's 10s segment, splitting nothing — verify it finished by
	// its deadline anyway and EDF order held.
	if k.FinishTime(2) > 12+schedule.Eps {
		t.Errorf("σ2 finish %v", k.FinishTime(2))
	}
	if k.FinishTime(1) > 30+schedule.Eps {
		t.Errorf("σ1 finish %v", k.FinishTime(1))
	}

	// Now a genuine split: σ2 on 1L (τ=10, δ=12) packs first; σ1 on
	// 1L1B (τ=8.1 < 10) fits alongside and finishes inside σ2's
	// segment, which must split at 8.1.
	p1 = jobs.ByID(1).Table.ByAlloc(platform.Alloc{1, 1})[0]
	asg = Assignment{1: p1, 2: p2}
	k, err = PackEDF(jobs, asg, plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 0); err != nil {
		t.Fatal(err)
	}
	if len(k.Segments) != 2 {
		t.Fatalf("segments = %d, want 2 (split at 8.1):\n%s", len(k.Segments), k)
	}
	if math.Abs(k.Segments[0].End-8.1) > 1e-9 {
		t.Errorf("split at %v, want 8.1", k.Segments[0].End)
	}
	if k.Segments[1].Find(1) >= 0 {
		t.Error("σ1 present after its completion")
	}
}

// Suspension: a job that does not fit a middle segment skips it and
// resumes later (the mechanism enabling Fig. 1(c)).
func TestPackEDFSuspension(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS2AtT1())
	plat := motiv.Platform()
	p1 := jobs.ByID(1).Table.ByAlloc(platform.Alloc{2, 1})[0]
	p2 := jobs.ByID(2).Table.ByAlloc(platform.Alloc{2, 1})[0]
	k, err := PackEDF(jobs, Assignment{1: p1, 2: p2}, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	// σ1 must be absent from σ2's segment.
	if k.Segments[0].Find(1) >= 0 {
		t.Errorf("σ1 not suspended during σ2's segment:\n%s", k)
	}
}

// Deadline violations inside PackEDF yield ErrInfeasible (line 23).
func TestPackEDFInfeasible(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS2AtT1())
	plat := motiv.Platform()
	// σ2 on a slow point cannot make its deadline 4.
	p2 := jobs.ByID(2).Table.ByAlloc(platform.Alloc{1, 0})[0]
	_, err := PackEDF(jobs, Assignment{2: p2}, plat, 1)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

// Partial assignments schedule only the assigned jobs (Algorithm 1 calls
// PackEDF with incrementally grown assignments).
func TestPackEDFPartial(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	p1 := jobs.ByID(1).Table.ByAlloc(platform.Alloc{2, 1})[0]
	k, err := PackEDF(jobs, Assignment{1: p1}, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(k.FinishTime(2)) {
		t.Errorf("unassigned job appears in schedule")
	}
	if len(k.Segments) != 1 {
		t.Errorf("segments = %d", len(k.Segments))
	}
}

func TestPackEDFEmptyAssignment(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	k, err := PackEDF(jobs, Assignment{}, motiv.Platform(), 1)
	if err != nil || !k.IsEmpty() {
		t.Errorf("empty assignment: k=%v err=%v", k, err)
	}
}

func TestPackEDFBadPointIndex(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	if _, err := PackEDF(jobs, Assignment{1: 99}, motiv.Platform(), 1); err == nil {
		t.Error("bad point index accepted")
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{1: 2}
	b := a.Clone()
	b[1] = 3
	if a[1] != 2 {
		t.Error("clone aliases")
	}
}
