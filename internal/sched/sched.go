// Package sched defines the scheduler interface shared by the paper's
// three algorithms (MMKP-MDF, EX-MEM, MMKP-LR) and the fixed-mapping
// baselines, together with helpers they all need: per-job configuration
// filtering against deadlines and processing-time containers, and the
// EDF packing of Algorithm 2, which both MMKP-MDF and the fixed mappers
// reuse.
package sched

import (
	"errors"
	"fmt"
	"math"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedule"
)

// ErrInfeasible is returned when a scheduler cannot construct a schedule
// that satisfies constraints (2b)–(2e); the runtime manager then rejects
// the newly arrived request.
var ErrInfeasible = errors.New("sched: no feasible schedule")

// Scheduler produces a schedule for the job set Σt at instant t.
type Scheduler interface {
	// Name returns the algorithm identifier used in reports
	// (e.g. "MMKP-MDF").
	Name() string
	// Schedule returns a schedule satisfying (2b)–(2e) or ErrInfeasible.
	// Implementations must not mutate the job set.
	Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error)
}

// SelfValidating is implemented by schedulers that guarantee every
// schedule they return has already passed Schedule.Validate against the
// exact (jobs, platform, t) it was requested for. The runtime manager
// then skips its own re-validation — one validation per activation
// instead of two on the memoized hot path.
type SelfValidating interface {
	// ValidatesOutput reports whether returned schedules are
	// pre-validated.
	ValidatesOutput() bool
}

// Func adapts a function to the Scheduler interface.
type Func struct {
	// ID is the reported name.
	ID string
	// F is the scheduling function.
	F func(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error)
}

// Name implements Scheduler.
func (f Func) Name() string { return f.ID }

// Schedule implements Scheduler.
func (f Func) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	return f.F(jobs, plat, t)
}

// FeasiblePoints returns the indices of the job's operating points that
// (i) meet the deadline optimistically (t + τ·ρ ≤ δ) and (ii) fit the
// processing-time containers J (θ·τ·ρ ≤ J per type). Passing a nil
// container skips check (ii). Indices preserve table order (ascending
// energy).
func FeasiblePoints(j *job.Job, t float64, containers platform.TimeVec) []int {
	var out []int
	slack := j.Slack(t)
	for i, p := range j.Table.Points {
		rem := p.RemainingTime(j.Remaining)
		if rem > slack+schedule.Eps {
			continue
		}
		if containers != nil && !containers.FitsUsage(p.Alloc, rem, schedule.Eps) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// Assignment fixes one operating point per job (by table index).
type Assignment map[int]int

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	b := make(Assignment, len(a))
	for k, v := range a {
		b[k] = v
	}
	return b
}

// PackEDF implements Algorithm 2 of the paper (SCHEDULEJOBS): given one
// fixed operating point per job, it builds a segmented schedule by
// iterating jobs in EDF order and placing each job into the earliest
// mapping segments with spare capacity, splitting a segment when the job
// finishes inside it and appending a fresh segment when capacity runs out
// only at the tail. It returns ErrInfeasible when some job would miss its
// deadline.
//
// Only jobs present in the assignment participate (Algorithm 1 calls this
// with partially built assignments).
func PackEDF(jobs job.Set, asg Assignment, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	m := plat.NumTypes()
	cap := plat.Capacity()
	// Σ̃ ← jobs with configurations, EDF order.
	pending := make(job.Set, 0, len(asg))
	for _, j := range jobs {
		if _, ok := asg[j.ID]; ok {
			pending = append(pending, j)
		}
	}
	if len(pending) == 0 {
		return &schedule.Schedule{}, nil
	}
	pending.SortEDF()
	k := &schedule.Schedule{}
	te := t // end of the last segment
	for _, j := range pending {
		ptIdx := asg[j.ID]
		if ptIdx < 0 || ptIdx >= j.Table.Len() {
			return nil, fmt.Errorf("sched: job %d: point %d out of range", j.ID, ptIdx)
		}
		pt := j.Table.Points[ptIdx]
		rho := j.Remaining
		finish := math.NaN()
		// Walk existing segments in time order.
		for si := 0; si < len(k.Segments) && rho > schedule.Eps; si++ {
			seg := &k.Segments[si]
			usage := seg.Usage(jobs, m)
			if !pt.Alloc.FitsWith(usage, cap) {
				continue
			}
			need := pt.RemainingTime(rho)
			dur := seg.Duration()
			if need >= dur-schedule.Eps {
				// Job spans the whole segment.
				seg.Placements = append(seg.Placements, schedule.Placement{JobID: j.ID, Point: ptIdx})
				rho -= dur / pt.Time
				if rho < schedule.Eps {
					rho = 0
					finish = seg.End
				}
			} else {
				// Job finishes inside: split and occupy the first part.
				cut := seg.Start + need
				if err := k.Split(si, cut); err != nil {
					return nil, fmt.Errorf("sched: packEDF split: %w", err)
				}
				first := &k.Segments[si]
				first.Placements = append(first.Placements, schedule.Placement{JobID: j.ID, Point: ptIdx})
				rho = 0
				finish = first.End
			}
		}
		if rho > schedule.Eps {
			// Tail segment(s): the job runs to completion after te.
			need := pt.RemainingTime(rho)
			seg := schedule.Segment{
				Start:      te,
				End:        te + need,
				Placements: []schedule.Placement{{JobID: j.ID, Point: ptIdx}},
			}
			if err := k.Append(seg); err != nil {
				return nil, fmt.Errorf("sched: packEDF append: %w", err)
			}
			te += need
			finish = te
		}
		if len(k.Segments) > 0 {
			te = k.Segments[len(k.Segments)-1].End
		}
		if math.IsNaN(finish) || finish > j.Deadline+schedule.Eps {
			return nil, ErrInfeasible
		}
	}
	return k, nil
}
