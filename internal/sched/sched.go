// Package sched defines the scheduler interface shared by the paper's
// three algorithms (MMKP-MDF, EX-MEM, MMKP-LR) and the fixed-mapping
// baselines, together with helpers they all need: per-job configuration
// filtering against deadlines and processing-time containers, and the
// EDF packing of Algorithm 2, which both MMKP-MDF and the fixed mappers
// reuse.
package sched

import (
	"errors"
	"sync"

	"adaptrm/internal/job"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedule"
)

// ErrInfeasible is returned when a scheduler cannot construct a schedule
// that satisfies constraints (2b)–(2e); the runtime manager then rejects
// the newly arrived request.
var ErrInfeasible = errors.New("sched: no feasible schedule")

// Scheduler produces a schedule for the job set Σt at instant t.
type Scheduler interface {
	// Name returns the algorithm identifier used in reports
	// (e.g. "MMKP-MDF").
	Name() string
	// Schedule returns a schedule satisfying (2b)–(2e) or ErrInfeasible.
	// Implementations must not mutate the job set.
	Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error)
}

// SelfValidating is implemented by schedulers that guarantee every
// schedule they return has already passed Schedule.Validate against the
// exact (jobs, platform, t) it was requested for. The runtime manager
// then skips its own re-validation — one validation per activation
// instead of two on the memoized hot path.
type SelfValidating interface {
	// ValidatesOutput reports whether returned schedules are
	// pre-validated.
	ValidatesOutput() bool
}

// Func adapts a function to the Scheduler interface.
type Func struct {
	// ID is the reported name.
	ID string
	// F is the scheduling function.
	F func(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error)
}

// Name implements Scheduler.
func (f Func) Name() string { return f.ID }

// Schedule implements Scheduler.
func (f Func) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	return f.F(jobs, plat, t)
}

// FeasiblePoints returns the indices of the job's operating points that
// (i) meet the deadline optimistically (t + τ·ρ ≤ δ) and (ii) fit the
// processing-time containers J (θ·τ·ρ ≤ J per type). Passing a nil
// container skips check (ii). Indices preserve table order (ascending
// energy).
func FeasiblePoints(j *job.Job, t float64, containers platform.TimeVec) []int {
	return FeasiblePointsInto(j, t, containers, nil)
}

// FeasiblePointsInto is FeasiblePoints appending into buf's backing
// array (buf is truncated first), so steady-state callers filter without
// allocating.
func FeasiblePointsInto(j *job.Job, t float64, containers platform.TimeVec, buf []int) []int {
	out := buf[:0]
	slack := j.Slack(t)
	for i, p := range j.Table.Points {
		rem := p.RemainingTime(j.Remaining)
		if rem > slack+schedule.Eps {
			continue
		}
		if containers != nil && !containers.FitsUsage(p.Alloc, rem, schedule.Eps) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// Assignment fixes one operating point per job (by table index). It is
// the map-keyed compatibility form; the scheduler hot path uses
// DenseAssignment, which indexes by job position instead.
type Assignment map[int]int

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	b := make(Assignment, len(a))
	for k, v := range a {
		b[k] = v
	}
	return b
}

// PackEDF implements Algorithm 2 of the paper (SCHEDULEJOBS): given one
// fixed operating point per job, it builds a segmented schedule by
// iterating jobs in EDF order and placing each job into the earliest
// mapping segments with spare capacity, splitting a segment when the job
// finishes inside it and appending a fresh segment when capacity runs out
// only at the tail. It returns ErrInfeasible when some job would miss its
// deadline.
//
// Only jobs present in the assignment participate (Algorithm 1 calls this
// with partially built assignments).
//
// PackEDF is a convenience wrapper over Packer, which hot paths use
// directly to pack without allocating; the wrapper borrows its packer
// and dense-assignment scratch from a pool, so only the returned
// schedule is allocated per call.
func PackEDF(jobs job.Set, asg Assignment, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	w := packPool.Get().(*pooledPacker)
	defer packPool.Put(w)
	w.packer.Reset(plat)
	w.dense = asg.Dense(jobs, w.dense)
	if err := w.packer.Pack(jobs, w.dense, t); err != nil {
		return nil, err
	}
	return w.packer.Schedule(), nil
}

// pooledPacker is the scratch of one PackEDF call.
type pooledPacker struct {
	packer Packer
	dense  DenseAssignment
}

var packPool = sync.Pool{New: func() any { return new(pooledPacker) }}
