package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/schedule"
)

// referencePackEDF is the retained naive implementation of Algorithm 2
// (the pre-Packer PackEDF): per-segment usage recomputed from the job
// set on every visit, schedule built directly through schedule.Split and
// schedule.Append. It exists only as the equivalence oracle for the
// allocation-free Packer.
func referencePackEDF(jobs job.Set, asg Assignment, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	m := plat.NumTypes()
	capacity := plat.Capacity()
	pending := make(job.Set, 0, len(asg))
	for _, j := range jobs {
		if _, ok := asg[j.ID]; ok {
			pending = append(pending, j)
		}
	}
	if len(pending) == 0 {
		return &schedule.Schedule{}, nil
	}
	pending.SortEDF()
	k := &schedule.Schedule{}
	te := t
	for _, j := range pending {
		ptIdx := asg[j.ID]
		if ptIdx < 0 || ptIdx >= j.Table.Len() {
			return nil, fmt.Errorf("sched: job %d: point %d out of range", j.ID, ptIdx)
		}
		pt := j.Table.Points[ptIdx]
		rho := j.Remaining
		finish := math.NaN()
		for si := 0; si < len(k.Segments) && rho > schedule.Eps; si++ {
			seg := &k.Segments[si]
			usage := seg.Usage(jobs, m)
			if !pt.Alloc.FitsWith(usage, capacity) {
				continue
			}
			need := pt.RemainingTime(rho)
			dur := seg.Duration()
			if need >= dur-schedule.Eps {
				seg.Placements = append(seg.Placements, schedule.Placement{JobID: j.ID, Point: ptIdx})
				rho -= dur / pt.Time
				if rho < schedule.Eps {
					rho = 0
					finish = seg.End
				}
			} else {
				cut := seg.Start + need
				if err := k.Split(si, cut); err != nil {
					return nil, fmt.Errorf("sched: packEDF split: %w", err)
				}
				first := &k.Segments[si]
				first.Placements = append(first.Placements, schedule.Placement{JobID: j.ID, Point: ptIdx})
				rho = 0
				finish = first.End
			}
		}
		if rho > schedule.Eps {
			need := pt.RemainingTime(rho)
			seg := schedule.Segment{
				Start:      te,
				End:        te + need,
				Placements: []schedule.Placement{{JobID: j.ID, Point: ptIdx}},
			}
			if err := k.Append(seg); err != nil {
				return nil, fmt.Errorf("sched: packEDF append: %w", err)
			}
			te += need
			finish = te
		}
		if len(k.Segments) > 0 {
			te = k.Segments[len(k.Segments)-1].End
		}
		if math.IsNaN(finish) || finish > j.Deadline+schedule.Eps {
			return nil, ErrInfeasible
		}
	}
	return k, nil
}

// randomPackProblem draws a random job set and a (partial, possibly
// infeasible) assignment over the motivational tables.
func randomPackProblem(rng *rand.Rand) (job.Set, Assignment) {
	tables := []*opset.Table{motiv.Lambda1(), motiv.Lambda2()}
	n := 1 + rng.Intn(5)
	jobs := make(job.Set, 0, n)
	asg := Assignment{}
	for i := 0; i < n; i++ {
		tbl := tables[rng.Intn(len(tables))]
		j := &job.Job{
			ID:        i + 1,
			Table:     tbl,
			Deadline:  0.5 + rng.Float64()*40,
			Remaining: 0.05 + rng.Float64()*0.95,
		}
		jobs = append(jobs, j)
		if rng.Float64() < 0.85 {
			asg[j.ID] = rng.Intn(tbl.Len())
		}
	}
	return jobs, asg
}

// The packer must produce byte-identical schedules (segment boundaries,
// placement lists in order) and identical error outcomes to the naive
// reference across random job sets and assignments. One packer instance
// is reused for every round, so scratch contamination between packs
// would surface here.
func TestPackerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	plat := motiv.Platform()
	packer := NewPacker(plat)
	var dense DenseAssignment
	rounds := 1500
	if testing.Short() {
		rounds = 200
	}
	for round := 0; round < rounds; round++ {
		jobs, asg := randomPackProblem(rng)
		want, wantErr := referencePackEDF(jobs, asg, plat, 0)

		packer.Reset(plat)
		dense = asg.Dense(jobs, dense)
		gotErr := packer.Pack(jobs, dense, 0)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("round %d: reference err %v, packer err %v", round, wantErr, gotErr)
		}
		if wantErr != nil {
			if errors.Is(wantErr, ErrInfeasible) != errors.Is(gotErr, ErrInfeasible) {
				t.Fatalf("round %d: error class mismatch: %v vs %v", round, wantErr, gotErr)
			}
			continue
		}
		got := packer.Schedule()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: schedules differ\nreference:\n%s\npacker:\n%s", round, want, got)
		}
		if e, g := energyOf(want, jobs), energyOf(got, jobs); e != g {
			t.Fatalf("round %d: energy %v vs %v", round, e, g)
		}

		// The compatibility wrapper must agree with the packer it wraps.
		viaWrapper, err := PackEDF(jobs, asg, plat, 0)
		if err != nil {
			t.Fatalf("round %d: wrapper failed where packer succeeded: %v", round, err)
		}
		if !reflect.DeepEqual(want, viaWrapper) {
			t.Fatalf("round %d: wrapper schedule differs", round)
		}
	}
}

func energyOf(k *schedule.Schedule, jobs job.Set) float64 { return k.Energy(jobs) }

// A warm packer packs without touching the heap: the pending list,
// segments, placements and usage vectors all come from retained scratch.
func TestPackerPackZeroAllocs(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	p1 := jobs.ByID(1).Table.ByAlloc(platform.Alloc{2, 1})[0]
	p2 := jobs.ByID(2).Table.ByAlloc(platform.Alloc{2, 1})[0]
	packer := NewPacker(plat)
	dense := Assignment{1: p1, 2: p2}.Dense(jobs, nil)
	// Warm the scratch buffers.
	if err := packer.Pack(jobs, dense, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := packer.Pack(jobs, dense, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Pack allocates %v times per run, want 0", allocs)
	}
}

// Dense conversion must mirror the map semantics, including the
// out-of-range rejection of negative point values.
func TestDenseAssignment(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	d := Assignment{1: 0}.Dense(jobs, nil)
	if len(d) != len(jobs) || d[0] != 0 || d[1] != Unassigned {
		t.Fatalf("dense = %v", d)
	}
	if _, err := PackEDF(jobs, Assignment{1: -3}, plat, 1); err == nil {
		t.Fatal("negative point index not rejected")
	}
	// Resize reuses backing and clears.
	d2 := d.Resize(1)
	if len(d2) != 1 || d2[0] != Unassigned {
		t.Fatalf("resized dense = %v", d2)
	}
}
