package router_test

import (
	"testing"

	"adaptrm/internal/api"
	"adaptrm/internal/fleet"
	"adaptrm/internal/placement"
	"adaptrm/internal/router"
)

// benchSubmitCancel drives the steady-state admit/cancel pair through
// any Service: the device returns to empty every iteration, so the
// scheduler does the same minimal work each time and the transport
// stack under test dominates the delta between variants.
func benchSubmitCancel(b *testing.B, svc api.Service) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
		if err != nil || !res.Accepted {
			b.Fatalf("submit: %+v, %v", res, err)
		}
		if _, err := svc.Cancel(bg, api.CancelRequest{Device: 0, JobID: res.JobID}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterHop isolates what one router hop costs an admission,
// at two levels: in-process (Direct vs Routed — the ring lookup, the
// metrics record and the generic dispatch, nothing else) and over live
// HTTP (OneHop: client → node, vs TwoHop: client → router daemon →
// node — the realistic deployed delta, one extra JSON/HTTP round
// trip). Recorded numbers live in benchmarks/README.md.
func BenchmarkRouterHop(b *testing.B) {
	newBench := func(b *testing.B) *fleet.Fleet {
		b.Helper()
		f := newFleet(b, 1, fleet.Options{})
		b.Cleanup(func() { _ = f.Close() })
		return f
	}

	b.Run("Direct", func(b *testing.B) {
		benchSubmitCancel(b, newBench(b).Service())
	})
	b.Run("Routed", func(b *testing.B) {
		f := newBench(b)
		rt, err := router.New([]router.Backend{{Name: "node0", Service: f.Service()}}, placement.Modulo(1))
		if err != nil {
			b.Fatal(err)
		}
		benchSubmitCancel(b, rt)
	})
	b.Run("OneHopHTTP", func(b *testing.B) {
		benchSubmitCancel(b, overHTTP(b, newBench(b).Service()))
	})
	b.Run("TwoHopHTTP", func(b *testing.B) {
		inner := overHTTP(b, newBench(b).Service())
		rt, err := router.New([]router.Backend{{Name: "node0", Service: inner}}, placement.Modulo(1))
		if err != nil {
			b.Fatal(err)
		}
		benchSubmitCancel(b, overHTTP(b, rt))
	})
}
