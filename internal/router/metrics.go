package router

import (
	"context"
	"errors"
	"io"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/metrics"
)

// Routed operation kinds, the op label of the per-peer counters.
const (
	opSubmit  = "submit"
	opAdvance = "advance"
	opCancel  = "cancel"
	opBatch   = "submit_batch"
	opStats   = "stats"
	opWatch   = "watch"
)

// ops fixes the emission order of the op label.
var ops = []string{opSubmit, opAdvance, opCancel, opBatch, opStats, opWatch}

// errClasses fixes the bounded label set of the per-peer error
// counters: every taxonomy code, plus "canceled" for caller-ended
// contexts and "other" as the overflow class. The set is closed at the
// router — peerError folds every failure into the taxonomy first — so
// a scrape's label cardinality is peers × classes, never
// request-dependent.
var errClasses = []string{
	api.CodeInfeasible, api.CodeUnknownDevice, api.CodeUnknownApp,
	api.CodeUnknownJob, api.CodeBadRequest, api.CodePayloadTooLarge,
	api.CodeOverloaded, api.CodeQuotaExceeded, api.CodeUnauthorized,
	api.CodeForbidden, api.CodeClosed, api.CodeUnavailable,
	api.CodeInternal, "canceled", "other",
}

// peerMetrics instruments one backend: request counts per op, error
// counts per class, and the request latency histogram over the fixed
// deterministic bucket ladder.
type peerMetrics struct {
	name     string
	requests map[string]*metrics.Counter
	errors   map[string]*metrics.Counter
	latency  *metrics.Histogram
}

// routerMetrics is the router's own observability: one peerMetrics per
// backend, emitted by WriteMetrics in peer order.
type routerMetrics struct {
	peers []*peerMetrics
}

func newRouterMetrics(backends []Backend) *routerMetrics {
	m := &routerMetrics{peers: make([]*peerMetrics, len(backends))}
	for i, b := range backends {
		p := &peerMetrics{
			name:     b.Name,
			requests: make(map[string]*metrics.Counter, len(ops)),
			errors:   make(map[string]*metrics.Counter, len(errClasses)),
			latency:  metrics.NewHistogram(metrics.DefaultLatencyBuckets),
		}
		for _, op := range ops {
			p.requests[op] = new(metrics.Counter)
		}
		for _, c := range errClasses {
			p.errors[c] = new(metrics.Counter)
		}
		m.peers[i] = p
	}
	return m
}

// classOf buckets a (peerError-folded) failure into its error class:
// caller-ended contexts are "canceled" (not the peer's fault), taxonomy
// codes map to themselves, anything else is "other".
func classOf(err error) string {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "canceled"
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		if _, ok := peerErrClass[ae.Code]; ok {
			return ae.Code
		}
	}
	return "other"
}

// peerErrClass is errClasses as a set.
var peerErrClass = func() map[string]struct{} {
	s := make(map[string]struct{}, len(errClasses))
	for _, c := range errClasses {
		s[c] = struct{}{}
	}
	return s
}()

// begin records the start of one routed call against peer p; the
// returned func records completion with the call's (already folded)
// error. Recording is two atomic increments and a histogram
// observation — nothing on the routing path allocates beyond the
// closure.
func (m *routerMetrics) begin(p int, op string) func(err error) {
	pm := m.peers[p]
	start := time.Now()
	return func(err error) {
		pm.requests[op].Inc()
		pm.latency.Observe(int64(time.Since(start)))
		if err != nil {
			pm.errors[classOf(err)].Inc()
		}
	}
}

// WriteMetrics emits the router's own Prometheus-text families:
//
//	adaptrm_router_peers                     gauge
//	adaptrm_router_requests_total{peer,op}   counter
//	adaptrm_router_errors_total{peer,code}   counter
//	adaptrm_router_request_seconds{peer}     histogram
//
// The signature uses only stdlib types, so the HTTP layer discovers it
// by interface assertion (interface{ WriteMetrics(io.Writer) error })
// without importing this package — the same pattern as the fleet's
// QueueDepths. Zero-valued error counters are skipped; request
// counters always emit so a scrape shows every peer even when idle.
func (r *Router) WriteMetrics(w io.Writer) error {
	e := metrics.NewEmitter(w)
	e.Family("adaptrm_router_peers", "Backend nodes behind the router.", "gauge")
	e.Int("adaptrm_router_peers", int64(len(r.backends)))
	e.Family("adaptrm_router_requests_total", "Routed requests by peer and operation.", "counter")
	for _, pm := range r.metrics.peers {
		for _, op := range ops {
			e.Int("adaptrm_router_requests_total", pm.requests[op].Value(),
				metrics.L("peer", pm.name), metrics.L("op", op))
		}
	}
	e.Family("adaptrm_router_errors_total", "Failed routed requests by peer and error class.", "counter")
	for _, pm := range r.metrics.peers {
		for _, c := range errClasses {
			if v := pm.errors[c].Value(); v > 0 {
				e.Int("adaptrm_router_errors_total", v,
					metrics.L("peer", pm.name), metrics.L("code", c))
			}
		}
	}
	e.Family("adaptrm_router_request_seconds", "Routed request round-trip time by peer.", "histogram")
	for _, pm := range r.metrics.peers {
		e.Histogram("adaptrm_router_request_seconds", pm.latency.Snapshot(),
			metrics.L("peer", pm.name))
	}
	return e.Err()
}
