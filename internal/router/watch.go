package router

import (
	"context"
	"sync"

	"adaptrm/internal/api"
)

// errNotStreaming is the taxonomy error for a backend that does not
// implement api.WatchService — a misconfigured deployment, spelled as a
// bad request rather than a transport failure.
func errNotStreaming(name string) error {
	return api.Errf(api.ErrBadRequest, "peer %s does not stream events", name)
}

// Watch implements api.WatchService.
//
// A single-device subscription — including any FromSeq resume —
// delegates wholesale to the device's owner: the owning node holds the
// retention window, so resume semantics (gap-free replay, the Lagged
// marker for an evicted range) are exactly the single-node semantics.
//
// A fleet-wide subscription opens one stream per backend and merges
// them into a single channel. Each device's events all travel its
// owner's stream, so per-device sequence order survives the merge;
// cross-device interleaving is unspecified, as it always was. The
// merged stream closes when every backend stream has closed or the
// context ends. A backend failing to open fails the whole subscription
// (the already-opened streams are released by cancelling the
// subscription context).
func (r *Router) Watch(ctx context.Context, req api.WatchRequest) (<-chan api.Event, error) {
	if req.Device != nil {
		p := r.ownerOf(*req.Device)
		b := r.backends[p]
		ws, ok := b.Service.(api.WatchService)
		if !ok {
			return nil, errNotStreaming(b.Name)
		}
		stop := r.metrics.begin(p, opWatch)
		ch, err := ws.Watch(ctx, req)
		err = r.peerError(p, err)
		stop(err)
		return ch, err
	}

	// Fleet-wide: open every backend stream first, so a refused
	// subscription costs nothing downstream.
	ctx, cancel := context.WithCancel(ctx)
	chans := make([]<-chan api.Event, len(r.backends))
	for i, b := range r.backends {
		ws, ok := b.Service.(api.WatchService)
		if !ok {
			cancel()
			return nil, errNotStreaming(b.Name)
		}
		stop := r.metrics.begin(i, opWatch)
		ch, err := ws.Watch(ctx, req)
		err = r.peerError(i, err)
		stop(err)
		if err != nil {
			cancel()
			return nil, err
		}
		chans[i] = ch
	}

	out := make(chan api.Event)
	var wg sync.WaitGroup
	wg.Add(len(chans))
	for _, ch := range chans {
		go func(ch <-chan api.Event) {
			defer wg.Done()
			for ev := range ch {
				select {
				case out <- ev:
				case <-ctx.Done():
					// The subscriber is gone; drain nothing further.
					return
				}
			}
		}(ch)
	}
	go func() {
		wg.Wait()
		cancel()
		close(out)
	}()
	return out, nil
}
