package router

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/placement"
)

// nopService satisfies api.Service for constructor tests.
type nopService struct{}

func (nopService) Submit(context.Context, api.SubmitRequest) (api.SubmitResult, error) {
	return api.SubmitResult{}, nil
}
func (nopService) Advance(context.Context, api.AdvanceRequest) (api.AdvanceResult, error) {
	return api.AdvanceResult{}, nil
}
func (nopService) Cancel(context.Context, api.CancelRequest) (api.CancelResult, error) {
	return api.CancelResult{}, nil
}
func (nopService) Stats(context.Context, api.StatsRequest) (api.StatsResult, error) {
	return api.StatsResult{}, nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("accepted empty backend list")
	}
	if _, err := New([]Backend{{Name: "a"}}, nil); err == nil {
		t.Error("accepted backend without service")
	}
	if _, err := New([]Backend{{Name: "a", Service: nopService{}}}, placement.Modulo(2)); err == nil {
		t.Error("accepted placement/backend count mismatch")
	}
	rt, err := New([]Backend{{Name: "a", Service: nopService{}}}, nil)
	if err != nil {
		t.Fatalf("defaulted ring: %v", err)
	}
	if rt.Placement().Owners() != 1 {
		t.Errorf("default placement owners = %d, want 1", rt.Placement().Owners())
	}
}

func TestMergeStats(t *testing.T) {
	got := mergeStats([]api.StatsResult{
		{Devices: 4, Shards: 2, Submitted: 10, Accepted: 7, Rejected: 3,
			Energy: 1.5, Activations: 9, SchedulingTime: 2 * time.Millisecond, MaxQueueDepth: 3},
		{Devices: 4, Shards: 2, Submitted: 5, Accepted: 5,
			Energy: 0.25, Activations: 4, SchedulingTime: time.Millisecond, MaxQueueDepth: 7},
	})
	want := api.StatsResult{
		Devices: 4, Shards: 4, Submitted: 15, Accepted: 12, Rejected: 3,
		Energy: 1.75, Activations: 13, SchedulingTime: 3 * time.Millisecond, MaxQueueDepth: 7,
	}
	if got != want {
		t.Errorf("merge:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{api.ErrInfeasible, api.CodeInfeasible},
		{api.Errf(api.ErrUnavailable, "peer x: dial refused"), api.CodeUnavailable},
		{fmt.Errorf("outer: %w", api.ErrQuotaExceeded), api.CodeQuotaExceeded},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "canceled"},
		{fmt.Errorf("ctx: %w", context.Canceled), "canceled"},
		{errors.New("socket melted"), "other"},
	}
	for _, c := range cases {
		if got := classOf(c.err); got != c.want {
			t.Errorf("classOf(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
