// Package router is the multi-node front-end of the fleet protocol: an
// api.Service (plus the Watch and Batch extensions) that owns a
// placement over N backend Services and routes every device-addressed
// operation to the backend owning that device. The backends are
// typically httpapi.Clients pointed at independent rmserve nodes — the
// HTTP client already is an api.Service, so the router composes over
// the wire for free — but any Service works, which is what the
// cross-topology equivalence suite exploits.
//
// Routing is stateless and deterministic: the placement (normally a
// placement.Ring shared with the operators who partitioned the fleet)
// is a pure function of its config, so every router instance, restart
// and test harness agrees on every device's owner without
// coordination. Per-device request order is preserved — a device
// always resolves to the same backend, which serialises it exactly as
// a single-node fleet shard would.
//
// Fleet-wide operations fan out. Stats queries every backend
// concurrently and merges in fixed peer order — counters summed,
// device count maxed — so the merge is deterministic for given peer
// snapshots. Fleet-wide watches open one stream per backend and merge
// them into a single channel; per-device ordering survives because
// each device's events all travel one stream, and cross-device
// interleaving was never guaranteed by the protocol in the first
// place. Single-device watches (including FromSeq resumes) delegate
// wholesale to the owning backend.
//
// A backend that cannot be reached surfaces as api.ErrUnavailable with
// the peer named in the message; taxonomy errors and context
// cancellation pass through untouched, so a client two hops away still
// matches errors.Is against the same sentinels it would in process.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"adaptrm/internal/api"
	"adaptrm/internal/control"
	"adaptrm/internal/placement"
)

// Backend is one routed node: a service plus the name the router uses
// in error messages and metric labels (conventionally its host:port).
type Backend struct {
	Name    string
	Service api.Service
}

// Router routes the fleet protocol across backends by device placement.
type Router struct {
	backends []Backend
	place    placement.Placement
	metrics  *routerMetrics
}

var (
	_ api.Service      = (*Router)(nil)
	_ api.BatchService = (*Router)(nil)
	_ api.WatchService = (*Router)(nil)
)

// New builds a router over backends using place, whose owner count must
// equal the backend count. Nil place means placement.Ring over the
// backends with default parameters — callers partitioning a real fleet
// normally pass the explicit ring the node operators share.
func New(backends []Backend, place placement.Placement) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("router: no backends")
	}
	for i, b := range backends {
		if b.Service == nil {
			return nil, fmt.Errorf("router: backend %d (%q) has no service", i, b.Name)
		}
	}
	if place == nil {
		place = placement.MustRing(placement.RingConfig{Owners: len(backends)})
	}
	if place.Owners() != len(backends) {
		return nil, fmt.Errorf("router: placement owns %d slots, have %d backends",
			place.Owners(), len(backends))
	}
	return &Router{backends: backends, place: place, metrics: newRouterMetrics(backends)}, nil
}

// Placement exposes the router's placement, letting harnesses build a
// backend fleet partitioned by the identical mapping.
func (r *Router) Placement() placement.Placement { return r.place }

// ownerOf resolves a device to its backend index.
func (r *Router) ownerOf(device int) int { return r.place.Owner(device) }

// peerError classifies a backend call's failure. Taxonomy errors pass
// through untouched — the backend answered, its verdict stands two hops
// away exactly as it would in process. Context endings pass through —
// the caller gave up, the peer is not to blame. Everything else is a
// transport failure (connection refused, reset mid-call, a proxy
// mangling the envelope): the peer is unreachable, which the taxonomy
// spells api.ErrUnavailable, with the peer named for the operator.
func (r *Router) peerError(peer int, err error) error {
	if err == nil {
		return nil
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return api.Errf(api.ErrUnavailable, "peer %s: %v", r.backends[peer].Name, err)
}

// route runs one device-addressed call against the owning backend,
// recording per-peer metrics and folding transport failures into the
// taxonomy.
func route[Res any](r *Router, device int, op string,
	call func(b Backend) (Res, error)) (Res, error) {
	p := r.ownerOf(device)
	stop := r.metrics.begin(p, op)
	res, err := call(r.backends[p])
	err = r.peerError(p, err)
	stop(err)
	return res, err
}

// Submit implements api.Service, delegating to the device's owner.
func (r *Router) Submit(ctx context.Context, req api.SubmitRequest) (api.SubmitResult, error) {
	return route(r, req.Device, opSubmit, func(b Backend) (api.SubmitResult, error) {
		return b.Service.Submit(ctx, req)
	})
}

// Advance implements api.Service, delegating to the device's owner.
func (r *Router) Advance(ctx context.Context, req api.AdvanceRequest) (api.AdvanceResult, error) {
	return route(r, req.Device, opAdvance, func(b Backend) (api.AdvanceResult, error) {
		return b.Service.Advance(ctx, req)
	})
}

// Cancel implements api.Service, delegating to the device's owner.
func (r *Router) Cancel(ctx context.Context, req api.CancelRequest) (api.CancelResult, error) {
	return route(r, req.Device, opCancel, func(b Backend) (api.CancelResult, error) {
		return b.Service.Cancel(ctx, req)
	})
}

// SubmitBatch implements api.BatchService: the whole batch addresses
// one device, so it routes like any single-device call. A backend that
// is only a plain Service decides the items sequentially through the
// api.SubmitBatch fallback — verdicts are identical either way.
func (r *Router) SubmitBatch(ctx context.Context, req api.BatchSubmitRequest) (api.BatchSubmitResult, error) {
	return route(r, req.Device, opBatch, func(b Backend) (api.BatchSubmitResult, error) {
		return api.SubmitBatch(ctx, b.Service, req)
	})
}

// Stats implements api.Service. A single-device query routes to the
// owner; the fleet-wide query fans out to every backend concurrently
// and merges the snapshots in fixed peer order (see merge), so the
// result is deterministic for given per-peer values. Any unreachable
// backend fails the merged query — a partial sum silently missing a
// node's counters would be indistinguishable from real values.
func (r *Router) Stats(ctx context.Context, req api.StatsRequest) (api.StatsResult, error) {
	if req.Device != nil {
		return route(r, *req.Device, opStats, func(b Backend) (api.StatsResult, error) {
			return b.Service.Stats(ctx, req)
		})
	}
	results := make([]api.StatsResult, len(r.backends))
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	wg.Add(len(r.backends))
	for i := range r.backends {
		go func(i int) {
			defer wg.Done()
			stop := r.metrics.begin(i, opStats)
			res, err := r.backends[i].Service.Stats(ctx, req)
			err = r.peerError(i, err)
			stop(err)
			results[i], errs[i] = res, err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return api.StatsResult{}, err
		}
	}
	return mergeStats(results), nil
}

// mergeStats folds per-backend snapshots into the fleet-wide view, in
// backend order. Every node of a routed deployment hosts the full
// device space (the placement partitions traffic, not configuration),
// so Devices is the maximum, not the sum; a device's counters are all
// zero on every node but its owner, so plain sums reconstruct exactly
// the numbers a single fleet would report. Shards sums (total worker
// goroutines behind the router) and MaxQueueDepth maxes — both are
// operational fields the Deterministic() view strips anyway.
func mergeStats(in []api.StatsResult) api.StatsResult {
	var out api.StatsResult
	for _, s := range in {
		if s.Devices > out.Devices {
			out.Devices = s.Devices
		}
		if s.MaxQueueDepth > out.MaxQueueDepth {
			out.MaxQueueDepth = s.MaxQueueDepth
		}
		out.Shards += s.Shards
		out.Submitted += s.Submitted
		out.Accepted += s.Accepted
		out.Rejected += s.Rejected
		out.Completed += s.Completed
		out.DeadlineMisses += s.DeadlineMisses
		out.Cancelled += s.Cancelled
		out.Energy += s.Energy
		out.Activations += s.Activations
		out.SchedulingTime += s.SchedulingTime
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.CacheStale += s.CacheStale
		out.CacheEvictions += s.CacheEvictions
		out.CacheRepacks += s.CacheRepacks
		out.CacheSharedHits += s.CacheSharedHits
		out.CachePromotions += s.CachePromotions
		out.ScheduleSwaps += s.ScheduleSwaps
		out.RefineSearches += s.RefineSearches
		out.RefineImproved += s.RefineImproved
		out.RefineSkipped += s.RefineSkipped
		out.RefineDropped += s.RefineDropped
		out.CoalescedBatches += s.CoalescedBatches
		out.CoalescedRequests += s.CoalescedRequests
		out.WatchSubscribers += s.WatchSubscribers
		out.WatchDropped += s.WatchDropped
		out.QuotaBudgetRefusals += s.QuotaBudgetRefusals
		out.QuotaRateRefusals += s.QuotaRateRefusals
		out.Shed += s.Shed
		out.ControlTicks += s.ControlTicks
		out.ControlModeChanges += s.ControlModeChanges
		// The routed mode is the worst tier over the backends that report
		// one: a probe acting on the merged view must see a single
		// shedding node.
		if s.ControlMode != "" {
			m, err := control.ParseMode(s.ControlMode)
			if err == nil {
				cur, curErr := control.ParseMode(out.ControlMode)
				if out.ControlMode == "" || curErr == nil && m > cur {
					out.ControlMode = m.String()
				}
			}
		}
	}
	return out
}
