package router_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/fleet"
	"adaptrm/internal/httpapi"
	"adaptrm/internal/motiv"
	"adaptrm/internal/placement"
	"adaptrm/internal/router"
	"adaptrm/internal/workload"
)

var bg = context.Background()

// newFleet builds a motivational-platform fleet with one MMKP-MDF
// scheduler per device and registers its teardown.
func newFleet(t testing.TB, devices int, opt fleet.Options) *fleet.Fleet {
	t.Helper()
	devs := make([]fleet.DeviceConfig, devices)
	for i := range devs {
		devs[i] = fleet.DeviceConfig{
			Platform:  motiv.Platform(),
			Library:   motiv.Library(),
			Scheduler: core.New(),
		}
	}
	f, err := fleet.New(devs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// overHTTP serves svc through a live httptest daemon and returns the
// typed client view — the shape of a real routed deployment, where each
// backend is an rmserve node reached over the wire.
func overHTTP(t testing.TB, svc api.Service) *httpapi.Client {
	t.Helper()
	s, err := httpapi.NewServer(svc, httpapi.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return httpapi.NewClient(ts.URL, "", ts.Client())
}

// mustRouter builds a router or fails the test.
func mustRouter(t testing.TB, backends []router.Backend, place placement.Placement) *router.Router {
	t.Helper()
	rt, err := router.New(backends, place)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// collect subscribes to one device's event stream and drains it in the
// background; the returned function blocks until the stream closes and
// yields everything received. Draining concurrently keeps the harness
// from ever back-pressuring the stream under test.
func collect(t *testing.T, ws api.WatchService, device int) func() []api.Event {
	t.Helper()
	dev := device
	ch, err := ws.Watch(bg, api.WatchRequest{Device: &dev, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []api.Event, 1)
	go func() {
		var evs []api.Event
		for ev := range ch {
			evs = append(evs, ev)
		}
		done <- evs
	}()
	return func() []api.Event { return <-done }
}

// outcome is the observable result of one protocol interaction,
// comparable across topologies.
type outcome struct {
	Kind        string
	Accepted    bool
	JobID       int
	Completions int
	ErrCode     string
}

func codeOf(err error) string {
	if err == nil {
		return ""
	}
	return api.ErrorCode(err)
}

// drive replays a deterministic interaction script — the seeded trace
// with interleaved advances, a submit+cancel epilogue, and a mixed
// batch per device — against a Service and records every observable
// result.
func drive(t *testing.T, svc api.Service, trace []workload.FleetRequest, devices int, horizon float64) ([]outcome, api.StatsResult) {
	t.Helper()
	var log []outcome
	for i, r := range trace {
		if i%5 == 4 {
			adv, err := svc.Advance(bg, api.AdvanceRequest{Device: r.Device, To: r.At})
			log = append(log, outcome{Kind: "advance", Completions: len(adv.Completions), ErrCode: codeOf(err)})
		}
		res, err := svc.Submit(bg, api.SubmitRequest{Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline})
		if err != nil && !errors.Is(err, api.ErrInfeasible) {
			t.Fatalf("entry %d (%+v): %v", i, r, err)
		}
		log = append(log, outcome{
			Kind: "submit", Accepted: res.Accepted, JobID: res.JobID,
			Completions: len(res.Completions), ErrCode: codeOf(err),
		})
	}
	for d := 0; d < devices; d++ {
		at := horizon + 10
		res, err := svc.Submit(bg, api.SubmitRequest{Device: d, At: at, App: "lambda2", Deadline: at + 8})
		log = append(log, outcome{
			Kind: "submit", Accepted: res.Accepted, JobID: res.JobID,
			Completions: len(res.Completions), ErrCode: codeOf(err),
		})
		if err == nil && res.Accepted {
			cr, cerr := svc.Cancel(bg, api.CancelRequest{Device: d, JobID: res.JobID})
			log = append(log, outcome{Kind: "cancel", Accepted: cr.Cancelled, JobID: res.JobID, ErrCode: codeOf(cerr)})
		}
		// A same-time batch with a generous and a tight deadline, so the
		// batch path crosses the router with mixed verdicts possible.
		at = horizon + 20
		br, berr := api.SubmitBatch(bg, svc, api.BatchSubmitRequest{
			Device: d, At: at,
			Items: []api.BatchItem{
				{App: "lambda1", Deadline: at + 9},
				{App: "lambda1", Deadline: at + 9.5},
			},
		})
		if berr != nil {
			t.Fatalf("batch device %d: %v", d, berr)
		}
		for _, v := range br.Verdicts {
			code := ""
			if v.Error != nil {
				code = v.Error.Code
			}
			log = append(log, outcome{Kind: "batch", Accepted: v.Accepted, JobID: v.JobID, ErrCode: code})
		}
	}
	st, err := svc.Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	return log, st
}

// TestCrossTopologyEquivalence is the acceptance gate of the routing
// layer: the same seeded trace driven against one in-process fleet and
// against a router over two HTTP nodes partitioned by the same ring
// must yield identical verdicts, job ids, merged statistics and
// per-device watch event logs.
func TestCrossTopologyEquivalence(t *testing.T) {
	const devices = 4
	const nodes = 2
	const horizon = 120.0
	trace, err := workload.FleetTrace(motiv.Library(), workload.FleetTraceParams{
		Devices: devices, Rate: 0.25, RateSpread: 0.5, Horizon: horizon, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := placement.MustRing(placement.RingConfig{Owners: nodes, Seed: 42})
	owned := make([]int, nodes)
	for d := 0; d < devices; d++ {
		owned[ring.Owner(d)]++
	}
	for n, c := range owned {
		if c == 0 {
			t.Fatalf("node %d owns no device under seed 42 — tune the ring seed", n)
		}
	}
	opt := fleet.Options{Shards: 2, Cache: true}

	// Topology A: one in-process fleet, default modulo placement.
	inproc := newFleet(t, devices, opt)
	aWait := make([]func() []api.Event, devices)
	for d := 0; d < devices; d++ {
		aWait[d] = collect(t, inproc.Service(), d)
	}
	aLog, aStats := drive(t, inproc.Service(), trace, devices, horizon)
	aDev := make([]api.StatsResult, devices)
	for d := 0; d < devices; d++ {
		dev := d
		if aDev[d], err = inproc.Service().Stats(bg, api.StatsRequest{Device: &dev}); err != nil {
			t.Fatal(err)
		}
	}
	if err := inproc.Close(); err != nil {
		t.Fatal(err)
	}

	// Topology B: the router over two HTTP nodes sharing the ring. Every
	// node hosts the full device space; the ring partitions traffic.
	backFleets := make([]*fleet.Fleet, nodes)
	backends := make([]router.Backend, nodes)
	for n := 0; n < nodes; n++ {
		backFleets[n] = newFleet(t, devices, opt)
		backends[n] = router.Backend{Name: fmt.Sprintf("node%d", n), Service: overHTTP(t, backFleets[n].Service())}
	}
	rt := mustRouter(t, backends, ring)
	bWait := make([]func() []api.Event, devices)
	for d := 0; d < devices; d++ {
		bWait[d] = collect(t, rt, d)
	}
	bLog, bStats := drive(t, rt, trace, devices, horizon)
	bDev := make([]api.StatsResult, devices)
	for d := 0; d < devices; d++ {
		dev := d
		if bDev[d], err = rt.Stats(bg, api.StatsRequest{Device: &dev}); err != nil {
			t.Fatal(err)
		}
	}
	// The merge must reconstruct the plain per-node sum, and the traffic
	// must really have split across both nodes.
	var nodeSubmitted int
	for n, f := range backFleets {
		ns := f.Stats()
		if ns.Submitted == 0 {
			t.Errorf("node %d received no traffic", n)
		}
		nodeSubmitted += ns.Submitted
	}
	if nodeSubmitted != bStats.Submitted {
		t.Errorf("merged Submitted %d != per-node sum %d", bStats.Submitted, nodeSubmitted)
	}
	for _, f := range backFleets {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Interaction logs: identical, entry by entry.
	if len(aLog) != len(bLog) {
		t.Fatalf("interaction counts differ: %d vs %d", len(aLog), len(bLog))
	}
	for i := range aLog {
		if aLog[i] != bLog[i] {
			t.Errorf("interaction %d diverged:\nin-process %+v\nrouted     %+v", i, aLog[i], bLog[i])
		}
	}
	// The run must exercise both verdicts to mean anything.
	if aStats.Accepted == 0 || aStats.Rejected == 0 {
		t.Fatalf("trace too easy or too hard (accepted %d, rejected %d) — tune parameters",
			aStats.Accepted, aStats.Rejected)
	}

	// Fleet-wide statistics: counters exactly equal; the energy total is
	// compared within float tolerance, because the router sums per-node
	// subtotals while the single fleet sums devices in index order —
	// same values, different association.
	aDet, bDet := aStats.Deterministic(), bStats.Deterministic()
	if relDiff(aDet.Energy, bDet.Energy) > 1e-12 {
		t.Errorf("fleet energy diverged beyond tolerance: %v vs %v", aDet.Energy, bDet.Energy)
	}
	aDet.Energy, bDet.Energy = 0, 0
	if aDet != bDet {
		t.Errorf("fleet stats diverged:\nin-process %+v\nrouted     %+v", aDet, bDet)
	}

	// Per-device statistics route to the owner and must be bit-identical
	// — a device's history lives on exactly one node.
	for d := 0; d < devices; d++ {
		if a, b := aDev[d].Deterministic(), bDev[d].Deterministic(); a != b {
			t.Errorf("device %d stats diverged:\nin-process %+v\nrouted     %+v", d, a, b)
		}
	}

	// Per-device event logs: identical sequences, and no Lagged markers
	// (the harness drains continuously).
	for d := 0; d < devices; d++ {
		a, b := aWait[d](), bWait[d]()
		if len(a) != len(b) {
			t.Errorf("device %d event counts differ: %d vs %d", d, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("device %d event %d diverged:\nin-process %+v\nrouted     %+v", d, i, a[i], b[i])
			}
			if a[i].Type == api.EventLagged || b[i].Type == api.EventLagged {
				t.Errorf("device %d event %d lagged — harness buffer too small", d, i)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestRouterRoutesByPlacement pins that traffic lands exactly on the
// placement's owner: after one submit per device, each backend fleet
// has counted precisely its owned devices and nothing else.
func TestRouterRoutesByPlacement(t *testing.T) {
	const devices = 8
	const nodes = 2
	ring := placement.MustRing(placement.RingConfig{Owners: nodes, Seed: 1})
	fleets := make([]*fleet.Fleet, nodes)
	backends := make([]router.Backend, nodes)
	for n := 0; n < nodes; n++ {
		fleets[n] = newFleet(t, devices, fleet.Options{})
		t.Cleanup(func() { _ = fleets[n].Close() })
		backends[n] = router.Backend{Name: fmt.Sprintf("node%d", n), Service: fleets[n].Service()}
	}
	rt := mustRouter(t, backends, ring)

	for d := 0; d < devices; d++ {
		if _, err := rt.Submit(bg, api.SubmitRequest{Device: d, At: 0, App: "lambda1", Deadline: 9}); err != nil && !errors.Is(err, api.ErrInfeasible) {
			t.Fatalf("device %d: %v", d, err)
		}
	}
	for n := 0; n < nodes; n++ {
		for d := 0; d < devices; d++ {
			dev := d
			st, err := fleets[n].Service().Stats(bg, api.StatsRequest{Device: &dev})
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			if ring.Owner(d) == n {
				want = 1
			}
			if st.Submitted != want {
				t.Errorf("node %d device %d: submitted %d, want %d", n, d, st.Submitted, want)
			}
		}
	}
}

// TestRouterUnavailable covers the transport-failure mapping: a dead
// peer surfaces as api.ErrUnavailable naming the peer, while devices
// owned by live peers keep working.
func TestRouterUnavailable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadClient := httpapi.NewClient(dead.URL, "", nil)
	dead.Close() // now every dial is refused

	live := newFleet(t, 2, fleet.Options{})
	t.Cleanup(func() { _ = live.Close() })

	// Modulo placement: device 0 → dead peer, device 1 → live peer.
	rt := mustRouter(t, []router.Backend{
		{Name: "dead-node", Service: deadClient},
		{Name: "live-node", Service: live.Service()},
	}, placement.Modulo(2))

	_, err := rt.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
	if !errors.Is(err, api.ErrUnavailable) {
		t.Errorf("submit to dead peer: %v, want ErrUnavailable", err)
	}
	if err == nil || !strings.Contains(err.Error(), "dead-node") {
		t.Errorf("error does not name the peer: %v", err)
	}
	if r, err := rt.Submit(bg, api.SubmitRequest{Device: 1, At: 0, App: "lambda1", Deadline: 9}); err != nil || !r.Accepted {
		t.Errorf("submit to live peer: %+v, %v", r, err)
	}

	// Fleet-wide stats refuse rather than return a partial sum.
	if _, err := rt.Stats(bg, api.StatsRequest{}); !errors.Is(err, api.ErrUnavailable) {
		t.Errorf("fleet stats with dead peer: %v, want ErrUnavailable", err)
	}
	d1 := 1
	if _, err := rt.Stats(bg, api.StatsRequest{Device: &d1}); err != nil {
		t.Errorf("device stats on live peer: %v", err)
	}

	// Watches: the dead owner refuses; fleet-wide needs every stream.
	d0 := 0
	if _, err := rt.Watch(bg, api.WatchRequest{Device: &d0}); !errors.Is(err, api.ErrUnavailable) {
		t.Errorf("watch on dead peer: %v, want ErrUnavailable", err)
	}
	if _, err := rt.Watch(bg, api.WatchRequest{}); !errors.Is(err, api.ErrUnavailable) {
		t.Errorf("fleet watch with dead peer: %v, want ErrUnavailable", err)
	}
	ctx, cancel := context.WithCancel(bg)
	ch, err := rt.Watch(ctx, api.WatchRequest{Device: &d1})
	if err != nil {
		t.Fatalf("watch on live peer: %v", err)
	}
	cancel()
	for range ch { // must close promptly after cancellation
	}
}

// errService returns a canned error from every method.
type errService struct{ err error }

func (s errService) Submit(context.Context, api.SubmitRequest) (api.SubmitResult, error) {
	return api.SubmitResult{}, s.err
}
func (s errService) Advance(context.Context, api.AdvanceRequest) (api.AdvanceResult, error) {
	return api.AdvanceResult{}, s.err
}
func (s errService) Cancel(context.Context, api.CancelRequest) (api.CancelResult, error) {
	return api.CancelResult{}, s.err
}
func (s errService) Stats(context.Context, api.StatsRequest) (api.StatsResult, error) {
	return api.StatsResult{}, s.err
}

// TestRouterPassesThroughVerdicts: taxonomy errors and context endings
// cross the router untouched — only transport failures are rewritten.
func TestRouterPassesThroughVerdicts(t *testing.T) {
	rt := mustRouter(t, []router.Backend{
		{Name: "verdict", Service: errService{err: api.Errf(api.ErrInfeasible, "no slack")}},
		{Name: "hungup", Service: errService{err: context.Canceled}},
	}, placement.Modulo(2))

	_, err := rt.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "x", Deadline: 1})
	if !errors.Is(err, api.ErrInfeasible) || errors.Is(err, api.ErrUnavailable) {
		t.Errorf("taxonomy error rewritten: %v", err)
	}
	_, err = rt.Submit(bg, api.SubmitRequest{Device: 1, At: 0, App: "x", Deadline: 1})
	if !errors.Is(err, context.Canceled) || errors.Is(err, api.ErrUnavailable) {
		t.Errorf("context ending rewritten: %v", err)
	}
}

// partialService rejects every submit but still reports completions —
// the partial result that must survive any number of hops.
type partialService struct{ errService }

func (partialService) Submit(context.Context, api.SubmitRequest) (api.SubmitResult, error) {
	return api.SubmitResult{Completions: []api.Completion{{JobID: 7, At: 3.5}}},
		api.Errf(api.ErrInfeasible, "device busy")
}

// twoHop builds client → router → node, both hops over live HTTP, and
// returns the outermost client.
func twoHop(t *testing.T, node api.Service) *httpapi.Client {
	t.Helper()
	inner := overHTTP(t, node)
	rt := mustRouter(t, []router.Backend{{Name: "node0", Service: inner}}, placement.Modulo(1))
	return overHTTP(t, rt)
}

// TestTwoHopErrorTaxonomy drives every taxonomy sentinel through two
// real HTTP hops — client → router → node — and asserts the sentinel
// still matches under errors.Is on every verb, with no spurious
// ErrUnavailable wrapping.
func TestTwoHopErrorTaxonomy(t *testing.T) {
	sentinels := []*api.Error{
		api.ErrInfeasible, api.ErrUnknownDevice, api.ErrUnknownApp,
		api.ErrUnknownJob, api.ErrBadRequest, api.ErrPayloadTooLarge,
		api.ErrOverloaded, api.ErrQuotaExceeded, api.ErrUnauthorized,
		api.ErrForbidden, api.ErrClosed, api.ErrUnavailable, api.ErrInternal,
	}
	for _, s := range sentinels {
		t.Run(s.Code, func(t *testing.T) {
			client := twoHop(t, errService{err: api.Errf(s, "detail %d", 42)})
			if _, err := client.Submit(bg, api.SubmitRequest{}); !errors.Is(err, s) {
				t.Errorf("submit: %v, want %v", err, s)
			}
			if _, err := client.Advance(bg, api.AdvanceRequest{}); !errors.Is(err, s) {
				t.Errorf("advance: %v, want %v", err, s)
			}
			if _, err := client.Cancel(bg, api.CancelRequest{}); !errors.Is(err, s) {
				t.Errorf("cancel: %v, want %v", err, s)
			}
			d := 0
			if _, err := client.Stats(bg, api.StatsRequest{Device: &d}); !errors.Is(err, s) {
				t.Errorf("stats: %v, want %v", err, s)
			}
			if s != api.ErrUnavailable {
				if _, err := client.Submit(bg, api.SubmitRequest{}); errors.Is(err, api.ErrUnavailable) {
					t.Errorf("submit wrapped as unavailable: %v", err)
				}
			}
		})
	}
}

// TestTwoHopPartialResult: a rejection's partial result (the
// completions that happened while advancing to the arrival time) rides
// the error envelope across both hops.
func TestTwoHopPartialResult(t *testing.T) {
	client := twoHop(t, partialService{})
	res, err := client.Submit(bg, api.SubmitRequest{Device: 0, At: 4, App: "x", Deadline: 9})
	if !errors.Is(err, api.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if len(res.Completions) != 1 || res.Completions[0].JobID != 7 || res.Completions[0].At != 3.5 {
		t.Errorf("partial result lost across hops: %+v", res.Completions)
	}
}

// TestRouterWatchResumeDelegates: a FromSeq resume through the router
// replays the owning node's retention window exactly as an in-process
// resume would — same events, same sequence numbers, gap-free.
func TestRouterWatchResumeDelegates(t *testing.T) {
	const devices = 2
	const dev = 1 // Modulo(2): owned by peer 1
	script := func(t *testing.T, svc api.Service) {
		t.Helper()
		if _, err := svc.Submit(bg, api.SubmitRequest{Device: dev, At: 0, App: "lambda1", Deadline: 9}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Advance(bg, api.AdvanceRequest{Device: dev, To: 50}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Submit(bg, api.SubmitRequest{Device: dev, At: 50, App: "lambda2", Deadline: 60}); err != nil {
			t.Fatal(err)
		}
	}
	// resume opens a FromSeq-1 subscription, then cancels the live job
	// as a terminator and reads up to its cancellation event — a
	// deterministic cut through an otherwise open-ended stream.
	resume := func(t *testing.T, ws api.WatchService, cancelID int) []api.Event {
		t.Helper()
		ctx, cancel := context.WithCancel(bg)
		d := dev
		ch, err := ws.Watch(ctx, api.WatchRequest{Device: &d, FromSeq: 1, Buffer: 4096})
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Release the subscription afterwards, or the SSE connection
		// would pin the httptest server open past the test body.
		defer func() {
			cancel()
			for range ch {
			}
		}()
		if _, err := ws.Cancel(bg, api.CancelRequest{Device: dev, JobID: cancelID}); err != nil {
			t.Fatal(err)
		}
		var evs []api.Event
		for ev := range ch {
			evs = append(evs, ev)
			if ev.Type == api.EventJobCancelled && ev.JobID == cancelID {
				return evs
			}
		}
		t.Fatal("stream closed before the terminator event")
		return nil
	}

	control := newFleet(t, devices, fleet.Options{})
	t.Cleanup(func() { _ = control.Close() })
	script(t, control.Service())

	fleets := make([]*fleet.Fleet, 2)
	backends := make([]router.Backend, 2)
	for n := range fleets {
		fleets[n] = newFleet(t, devices, fleet.Options{})
		t.Cleanup(func() { _ = fleets[n].Close() })
		backends[n] = router.Backend{Name: fmt.Sprintf("node%d", n), Service: overHTTP(t, fleets[n].Service())}
	}
	rt := mustRouter(t, backends, placement.Modulo(2))
	script(t, rt)

	// The second submit's job id is deterministic; read it back from the
	// control run by cancelling what is active there.
	want := resume(t, control.Service(), 2)
	got := resume(t, rt, 2)
	if len(want) != len(got) {
		t.Fatalf("resume logs differ in length: %d vs %d\nin-process %+v\nrouted     %+v", len(want), len(got), want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("resume event %d diverged:\nin-process %+v\nrouted     %+v", i, want[i], got[i])
		}
	}
	if want[0].Seq != 1 {
		t.Errorf("resume did not start at seq 1: %+v", want[0])
	}
}

// TestRouterMetricsExport: the router's per-peer counters surface on a
// front-end daemon's /metrics through the same interface discovery the
// fleet gauges use.
func TestRouterMetricsExport(t *testing.T) {
	f := newFleet(t, 2, fleet.Options{})
	t.Cleanup(func() { _ = f.Close() })
	rt := mustRouter(t, []router.Backend{{Name: "node0", Service: overHTTP(t, f.Service())}}, placement.Modulo(1))

	s, err := httpapi.NewServer(rt, httpapi.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	if _, err := rt.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(bg, api.SubmitRequest{Device: 1, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Stats(bg, api.StatsRequest{}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"adaptrm_router_peers 1",
		`adaptrm_router_requests_total{peer="node0",op="submit"} 2`,
		// The /metrics handler itself queries Stats for the fleet gauges,
		// so only presence is pinned, not an exact count.
		`adaptrm_router_requests_total{peer="node0",op="stats"}`,
		`adaptrm_router_request_seconds_bucket{peer="node0",`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// statsService is a healthy stub that only answers Stats, with a canned
// snapshot — the merge inputs of a routed fleet.
type statsService struct{ res api.StatsResult }

func (s statsService) Submit(context.Context, api.SubmitRequest) (api.SubmitResult, error) {
	return api.SubmitResult{}, nil
}
func (s statsService) Advance(context.Context, api.AdvanceRequest) (api.AdvanceResult, error) {
	return api.AdvanceResult{}, nil
}
func (s statsService) Cancel(context.Context, api.CancelRequest) (api.CancelResult, error) {
	return api.CancelResult{}, nil
}
func (s statsService) Stats(context.Context, api.StatsRequest) (api.StatsResult, error) {
	return s.res, nil
}

// TestRouterSheddingBackend pins the routed face of graceful
// degradation: a backend in shedding mode answers ErrOverloaded, which
// must cross the router (and a real HTTP hop) as the taxonomy verdict
// it is — not be rewritten into a transport 502/unavailable — and the
// per-peer error metrics must count it under its own class.
func TestRouterSheddingBackend(t *testing.T) {
	shedding := errService{err: api.Errf(api.ErrOverloaded, "device 0: shedding load")}
	rt := mustRouter(t, []router.Backend{
		{Name: "shed-node", Service: overHTTP(t, shedding)},
	}, placement.Modulo(1))

	_, err := rt.Submit(bg, api.SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
	if !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("submit via shedding backend: %v, want ErrOverloaded", err)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
		t.Fatalf("error lost its taxonomy code: %v", err)
	}
	if errors.Is(err, api.ErrUnavailable) {
		t.Fatal("overloaded verdict rewritten as unavailable")
	}

	var sb strings.Builder
	if err := rt.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	want := `adaptrm_router_errors_total{peer="shed-node",code="overloaded"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("router metrics missing %q in:\n%s", want, sb.String())
	}
}

// TestRouterMergesControlMode: the fleet-wide stats merge sums shed and
// controller counters and reports the worst degradation tier across the
// backends, so a probe on the merged view sees a single shedding node.
func TestRouterMergesControlMode(t *testing.T) {
	rt := mustRouter(t, []router.Backend{
		{Name: "calm", Service: statsService{res: api.StatsResult{
			Devices: 2, ControlMode: "normal", ControlTicks: 10,
		}}},
		{Name: "hot", Service: statsService{res: api.StatsResult{
			Devices: 2, ControlMode: "shedding", Shed: 7, ControlTicks: 9, ControlModeChanges: 2,
		}}},
	}, placement.Modulo(2))

	res, err := rt.Stats(bg, api.StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlMode != "shedding" {
		t.Errorf("merged mode = %q, want the worst tier (shedding)", res.ControlMode)
	}
	if res.Shed != 7 || res.ControlTicks != 19 || res.ControlModeChanges != 2 {
		t.Errorf("merged control counters: shed %d ticks %d changes %d, want 7/19/2",
			res.Shed, res.ControlTicks, res.ControlModeChanges)
	}
}
