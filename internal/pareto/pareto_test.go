package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	tests := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{1, 3}, true},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: not strict
		{[]float64{1, 3}, []float64{2, 2}, false}, // trade-off
		{[]float64{2, 2}, []float64{1, 1}, false},
	}
	for _, tc := range tests {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestFilterSimple(t *testing.T) {
	pts := [][]float64{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 4}, // dominated by {3,3}
		{4, 6}, // dominated by several
		{0, 9}, // front
	}
	got := Filter(pts)
	want := []int{0, 1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Filter = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Filter = %v, want %v", got, want)
		}
	}
}

func TestFilterEmptyAndSingleton(t *testing.T) {
	if got := Filter(nil); got != nil {
		t.Errorf("Filter(nil) = %v", got)
	}
	if got := Filter([][]float64{{1, 2, 3}}); len(got) != 1 || got[0] != 0 {
		t.Errorf("Filter singleton = %v", got)
	}
}

func TestFilterDuplicatesKept(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {2, 0}}
	got := Filter(pts)
	if len(got) != 3 {
		t.Errorf("duplicates should all be kept, got %v", got)
	}
}

// Table II of the paper: the λ1 point 0L1B (τ=11.2, ξ=18.54) must survive
// against 1L1B (τ=8.1, ξ=10.90) because the resource dimensions make them
// incomparable. This pins down that filtering happens over [θ…, τ, ξ].
func TestFilterPaperTable2Semantics(t *testing.T) {
	pts := [][]float64{
		{0, 1, 11.2, 18.54}, // 0L1B
		{1, 1, 8.1, 10.90},  // 1L1B
	}
	if got := Filter(pts); len(got) != 2 {
		t.Errorf("0L1B should survive with resource dimensions, got %v", got)
	}
	// Without the resource dimensions it must be dominated.
	pts2 := [][]float64{{11.2, 18.54}, {8.1, 10.90}}
	got := Filter(pts2)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("time/energy-only filter = %v, want [1]", got)
	}
}

// Properties: the filtered set is a front; every removed point is
// dominated by some kept point; filtering is idempotent.
func TestFilterProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 1 + rng.Intn(40)
		dims := 2 + rng.Intn(3)
		pts := make([][]float64, n)
		for i := range pts {
			v := make([]float64, dims)
			for d := range v {
				v[d] = float64(rng.Intn(6)) // small ints force ties/domination
			}
			pts[i] = v
		}
		keep := Filter(pts)
		kept := make([][]float64, len(keep))
		inKeep := make(map[int]bool, len(keep))
		for i, k := range keep {
			kept[i] = pts[k]
			inKeep[k] = true
		}
		if !IsFront(kept) {
			return false
		}
		for i := range pts {
			if inKeep[i] {
				continue
			}
			dominated := false
			for _, k := range keep {
				if Dominates(pts[k], pts[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		again := Filter(kept)
		return len(again) == len(kept)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestIsFront(t *testing.T) {
	if !IsFront([][]float64{{1, 2}, {2, 1}}) {
		t.Error("trade-off pair should be a front")
	}
	if IsFront([][]float64{{1, 1}, {2, 2}}) {
		t.Error("dominated pair should not be a front")
	}
}
