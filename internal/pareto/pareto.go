// Package pareto provides Pareto-front filtering over vectors of
// lower-is-better objectives. It is used by the design-space exploration
// to reduce benchmarked operating points to the Pareto-optimal set handed
// to the runtime manager, exactly as assumed by the paper ("operating
// points are assumed to be already Pareto-filtered").
package pareto

import "sort"

// Dominates reports whether a dominates b: a is no worse in every
// objective and strictly better in at least one. All objectives are
// lower-is-better. It panics if the vectors differ in length.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic("pareto: vector length mismatch")
	}
	strict := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			strict = true
		}
	}
	return strict
}

// Filter returns the indices of the non-dominated points, in their
// original order. Duplicate points are all kept (none dominates another).
// The implementation sorts by the first objective and performs pairwise
// checks within the candidate set, which is O(n²) in the worst case but
// fast for the table sizes the DSE produces (tens of points).
func Filter(points [][]float64) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sorting by the first objective (then lexicographically) means a
	// point can only be dominated by an earlier point in the order.
	sort.SliceStable(order, func(x, y int) bool {
		a, b := points[order[x]], points[order[y]]
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	})
	dominated := make([]bool, n)
	for i := 0; i < n; i++ {
		pi := order[i]
		if dominated[pi] {
			continue
		}
		for j := i + 1; j < n; j++ {
			pj := order[j]
			if dominated[pj] {
				continue
			}
			if Dominates(points[pi], points[pj]) {
				dominated[pj] = true
			}
		}
	}
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !dominated[i] {
			keep = append(keep, i)
		}
	}
	return keep
}

// IsFront reports whether no point in the set dominates another, i.e. the
// set already forms a Pareto front.
func IsFront(points [][]float64) bool {
	for i := range points {
		for j := range points {
			if i != j && Dominates(points[i], points[j]) {
				return false
			}
		}
	}
	return true
}
