// Package fixedmap implements the fixed-mapping resource managers of the
// paper's motivational section (Fig. 1a and 1b): schedulers that choose
// one operating point per job and keep it for the job's entire remaining
// execution, with all admitted jobs running concurrently.
//
// Two variants exist:
//
//   - OnArrival (Fig. 1a): the mapping is chosen once, at the RM
//     activation, and never changes ("remapping @ application start").
//   - Remap (Fig. 1b): the mapping is additionally recomputed whenever a
//     job finishes ("remapping @ application start and finish"); each
//     epoch between finishes is still a fixed concurrent mapping.
//
// Both reduce point selection to an exact MMKP over instantaneous core
// counts (energy-minimal subject to θ-sums ≤ Θ and per-job optimistic
// deadlines). They serve as ablation baselines: Section III shows they
// waste energy (16.96 / 15.49 vs 14.63 J on S1) and reject scenario S2
// outright.
package fixedmap

import (
	"math"
	"slices"

	"adaptrm/internal/job"
	"adaptrm/internal/mmkp"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedule"
)

// Variant selects the fixed-mapper flavour.
type Variant int

const (
	// OnArrival never remaps after the initial decision (Fig. 1a).
	OnArrival Variant = iota
	// Remap re-runs the mapper at every job completion (Fig. 1b).
	Remap
)

// Scheduler is a fixed-mapping scheduler.
type Scheduler struct {
	variant Variant
}

// New returns a fixed mapper of the given variant.
func New(v Variant) *Scheduler { return &Scheduler{variant: v} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.variant == Remap {
		return "FIXED-REMAP"
	}
	return "FIXED"
}

// solveEpoch picks one point per job, minimizing total remaining energy
// subject to concurrent resource feasibility and per-job deadlines at
// instant t. The result is a dense assignment keyed by position in jobs
// (written into buf, reused across epochs); it returns nil when no joint
// assignment exists.
func solveEpoch(jobs job.Set, plat platform.Platform, t float64, buf sched.DenseAssignment) sched.DenseAssignment {
	cap := plat.Capacity()
	prob := &mmkp.Problem{Capacity: make([]float64, len(cap))}
	for d, c := range cap {
		prob.Capacity[d] = float64(c)
	}
	// Track the table indices behind each MMKP item.
	itemPoint := make([][]int, len(jobs))
	for gi, j := range jobs {
		var items []mmkp.Item
		for pi, p := range j.Table.Points {
			if p.RemainingTime(j.Remaining) > j.Slack(t)+schedule.Eps {
				continue
			}
			w := make([]float64, len(cap))
			for d, c := range p.Alloc {
				w[d] = float64(c)
			}
			items = append(items, mmkp.Item{Value: -p.RemainingEnergy(j.Remaining), Weight: w})
			itemPoint[gi] = append(itemPoint[gi], pi)
		}
		if len(items) == 0 {
			return nil
		}
		prob.Groups = append(prob.Groups, items)
	}
	choice := prob.SolveExact()
	if choice == nil {
		return nil
	}
	asg := buf.Resize(len(jobs))
	for gi := range jobs {
		asg[gi] = int32(itemPoint[gi][choice[gi]])
	}
	return asg
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(jobs job.Set, plat platform.Platform, t float64) (*schedule.Schedule, error) {
	if err := jobs.Validate(t); err != nil {
		return nil, err
	}
	k := &schedule.Schedule{}
	alive := jobs.Clone()
	cur := t
	asg := solveEpoch(alive, plat, cur, nil)
	if asg == nil {
		return nil, sched.ErrInfeasible
	}
	for len(alive) > 0 {
		if s.variant == Remap && len(k.Segments) > 0 {
			// Fig. 1b: remap at each finish. Keeping the previous points
			// is always an option, so a feasible epoch stays feasible.
			asg = solveEpoch(alive, plat, cur, asg)
			if asg == nil {
				return nil, sched.ErrInfeasible
			}
		}
		// All alive jobs run concurrently; the epoch ends at the first
		// finish.
		dt := math.Inf(1)
		for i, j := range alive {
			r := j.Table.Points[asg[i]].RemainingTime(j.Remaining)
			if r < dt {
				dt = r
			}
		}
		seg := schedule.Segment{Start: cur, End: cur + dt}
		for i, j := range alive {
			seg.Placements = append(seg.Placements, schedule.Placement{JobID: j.ID, Point: int(asg[i])})
		}
		slices.SortFunc(seg.Placements, func(a, b schedule.Placement) int {
			return a.JobID - b.JobID
		})
		if err := k.Append(seg); err != nil {
			return nil, err
		}
		cur += dt
		// Compact the survivors in place, keeping their point choices
		// aligned with their new positions (the OnArrival variant never
		// re-solves, so the dense assignment must follow the shrinkage).
		w := 0
		for i, j := range alive {
			pt := j.Table.Points[asg[i]]
			j.Remaining -= dt / pt.Time
			if j.Remaining <= schedule.Eps {
				// Finished: deadline satisfied by the epoch's item filter
				// only optimistically; verify for safety.
				if cur > j.Deadline+1e-6 {
					return nil, sched.ErrInfeasible
				}
				continue
			}
			alive[w] = j
			asg[w] = asg[i]
			w++
		}
		alive = alive[:w]
		asg = asg[:w]
	}
	k.Normalize()
	return k, nil
}
