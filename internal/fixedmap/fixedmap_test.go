package fixedmap

import (
	"errors"
	"math"
	"testing"

	"adaptrm/internal/job"
	"adaptrm/internal/motiv"
	"adaptrm/internal/platform"
	"adaptrm/internal/sched"
)

func TestNames(t *testing.T) {
	if New(OnArrival).Name() != "FIXED" || New(Remap).Name() != "FIXED-REMAP" {
		t.Error("names wrong")
	}
}

// Fig. 1(a): the fixed mapper chooses 1L1B for both jobs; total energy
// 16.96 J including σ1's first second.
func TestFig1aOnArrival(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	k, err := New(OnArrival).Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	if math.Abs(total-16.96) > 0.01 {
		t.Errorf("Fig 1(a) energy = %.3f, want 16.96", total)
	}
	// Both jobs on 1L1B in the first epoch.
	for _, p := range k.Segments[0].Placements {
		pt := jobs.ByID(p.JobID).Table.Points[p.Point]
		if !pt.Alloc.Equal(platform.Alloc{1, 1}) {
			t.Errorf("job %d on %v, want 1L1B", p.JobID, pt.Alloc)
		}
	}
	// σ2 finishes at 4.5.
	if got := k.FinishTime(2); math.Abs(got-4.5) > 1e-6 {
		t.Errorf("σ2 finish = %v, want 4.5", got)
	}
}

// Fig. 1(b): remapping at σ2's completion switches σ1 to 2L; total
// energy 15.49 J.
func TestFig1bRemap(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	k, err := New(Remap).Schedule(jobs, plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(plat, jobs, 1); err != nil {
		t.Fatal(err)
	}
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	if math.Abs(total-15.49) > 0.01 {
		t.Errorf("Fig 1(b) energy = %.3f, want 15.49", total)
	}
	// After σ2 finishes, σ1 runs on 2L (the most efficient remaining
	// point).
	last := k.Segments[len(k.Segments)-1]
	pt := jobs.ByID(1).Table.Points[last.Placements[0].Point]
	if !pt.Alloc.Equal(platform.Alloc{2, 0}) {
		t.Errorf("σ1 final point %v, want 2L0B", pt.Alloc)
	}
}

// Scenario S2: fixed mappers cannot serve both deadlines and must reject
// (Section III: "a fixed mapper will be unable to find a schedule").
func TestS2RejectedByFixedMappers(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS2AtT1())
	plat := motiv.Platform()
	for _, v := range []Variant{OnArrival, Remap} {
		_, err := New(v).Schedule(jobs, plat, 1)
		if !errors.Is(err, sched.ErrInfeasible) {
			t.Errorf("%v: err = %v, want ErrInfeasible", New(v).Name(), err)
		}
	}
}

func TestSingleJob(t *testing.T) {
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: 9, Remaining: 1}}
	plat := motiv.Platform()
	for _, v := range []Variant{OnArrival, Remap} {
		k, err := New(v).Schedule(jobs, plat, 0)
		if err != nil {
			t.Fatalf("%d: %v", v, err)
		}
		if got := k.Energy(jobs); math.Abs(got-8.90) > 1e-9 {
			t.Errorf("%d: energy = %v, want 8.90", v, got)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := New(OnArrival).Schedule(nil, motiv.Platform(), 0); err == nil {
		t.Error("empty set accepted")
	}
	jobs := job.Set{{ID: 1, Table: motiv.Lambda1(), Deadline: -1, Remaining: 1}}
	if _, err := New(Remap).Schedule(jobs, motiv.Platform(), 0); err == nil {
		t.Error("expired deadline accepted")
	}
}

// The caller's jobs must not be mutated even though the scheduler
// simulates progress internally.
func TestDoesNotMutate(t *testing.T) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	before := jobs.Clone()
	if _, err := New(Remap).Schedule(jobs, motiv.Platform(), 1); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Remaining != before[i].Remaining {
			t.Errorf("job %d mutated", jobs[i].ID)
		}
	}
}
