module adaptrm

go 1.24
