package adaptrm

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"adaptrm/internal/motiv"
)

func TestFacadeGreedyScheduler(t *testing.T) {
	s := NewMMKPGreedy()
	if s.Name() != "MMKP-GR" {
		t.Errorf("name = %q", s.Name())
	}
	jobs := JobSet(motiv.ScenarioS1AtT1())
	k, err := ScheduleJobs(s, jobs, Motivational2L2B(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.IsEmpty() {
		t.Error("empty schedule")
	}
}

func TestFacadeProactive(t *testing.T) {
	lib := motiv.Library()
	pred := NewInterArrivalPredictor()
	pro := NewProactive(NewMMKPMDF(), pred, lib, 20, "lambda2")
	if pro.Name() != "MMKP-MDF+predict" {
		t.Errorf("name = %q", pro.Name())
	}
	// With no observations the wrapper passes through.
	jobs := JobSet(motiv.ScenarioS1AtT1())
	if _, err := ScheduleJobs(pro, jobs, Motivational2L2B(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDVFS(t *testing.T) {
	plat := OdroidXU4DVFS()
	if err := plat.Validate(); err != nil {
		t.Fatal(err)
	}
	lib, err := ExploreDVFS(plat, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 9 {
		t.Fatalf("library has %d tables", lib.Len())
	}
	// A DVFS library schedules through the normal runtime path.
	mgr, err := NewManager(plat, lib, NewMMKPMDF(), ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	name := lib.Names()[0]
	if _, ok, _, err := mgr.Submit(0, name, 1e6); err != nil || !ok {
		t.Fatalf("submit: ok=%v err=%v", ok, err)
	}
	if _, err := mgr.Drain(); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().DeadlineMisses != 0 {
		t.Error("misses")
	}
}

func TestFacadeFleet(t *testing.T) {
	lib := motiv.Library()
	trace, err := GenerateFleetTrace(lib, FleetTraceParams{
		Devices: 3, Rate: 0.1, Horizon: 60, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty fleet trace")
	}
	devs := make([]FleetDevice, 3)
	for i := range devs {
		devs[i] = FleetDevice{
			Platform:  Motivational2L2B(),
			Library:   lib,
			Scheduler: NewMMKPMDF(),
		}
	}
	f, err := NewFleet(devs, FleetOptions{Shards: 2, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Replay(trace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Submitted != len(trace) {
		t.Errorf("submitted %d of %d", s.Submitted, len(trace))
	}
	if s.Completed != s.Accepted {
		t.Errorf("drain incomplete: %+v", s)
	}
}

// TestFacadeService exercises the re-exported protocol surface: the
// in-process fleet service and the HTTP client both satisfy Service,
// agree on decisions, and surface the taxonomy sentinels.
func TestFacadeService(t *testing.T) {
	lib := motiv.Library()
	newFleet := func() *Fleet {
		devs := []FleetDevice{{Platform: Motivational2L2B(), Library: lib, Scheduler: NewMMKPMDF()}}
		f, err := NewFleet(devs, FleetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	ctx := context.Background()

	inproc := newFleet()
	t.Cleanup(func() { _ = inproc.Close() })
	backend := newFleet()
	t.Cleanup(func() { _ = backend.Close() })
	srv, err := NewHTTPServer(backend.Service(), HTTPServerOptions{
		Tenants: []Tenant{{Name: "t", Token: "tok", MaxRequests: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	// Misconfigured tenant lists fail at construction.
	if _, err := NewHTTPServer(backend.Service(), HTTPServerOptions{
		Tenants: []Tenant{{Name: "a", Token: "x"}, {Name: "b", Token: "x"}},
	}); err == nil {
		t.Error("duplicate tenant tokens accepted")
	}

	for name, svc := range map[string]Service{
		"in-process": inproc.Service(),
		"http":       NewHTTPClient(ts.URL, "tok", ts.Client()),
	} {
		res, err := svc.Submit(ctx, SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9})
		if err != nil || !res.Accepted || res.JobID != 1 {
			t.Fatalf("%s: submit = %+v, %v", name, res, err)
		}
		if _, err := svc.Submit(ctx, SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); !errors.Is(err, ErrRejected) {
			t.Errorf("%s: second λ1: %v, want ErrRejected", name, err)
		}
		if _, err := svc.Cancel(ctx, CancelRequest{Device: 0, JobID: 999}); !errors.Is(err, ErrUnknownJob) {
			t.Errorf("%s: cancel: %v, want ErrUnknownJob", name, err)
		}
		st, err := svc.Stats(ctx, StatsRequest{})
		if err != nil || st.Accepted != 1 || st.Rejected != 1 {
			t.Errorf("%s: stats = %+v, %v", name, st, err)
		}
	}
	// The budgeted HTTP tenant has spent 3 of 4 mutating calls; two more
	// exhaust the quota with a typed error.
	client := NewHTTPClient(ts.URL, "tok", ts.Client())
	if _, err := client.Advance(ctx, AdvanceRequest{Device: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Advance(ctx, AdvanceRequest{Device: 0, To: 2}); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("quota: %v, want ErrQuotaExceeded", err)
	}
}

// TestFacadeSubmitBatch exercises the batched-admission surface: the
// uniform SubmitBatch helper over both transports, the manager-level
// batch call, and the fleet's coalescing window option.
func TestFacadeSubmitBatch(t *testing.T) {
	lib := motiv.Library()
	ctx := context.Background()
	devs := []FleetDevice{{Platform: Motivational2L2B(), Library: lib, Scheduler: NewMMKPMDF()}}
	f, err := NewFleet(devs, FleetOptions{BatchWindow: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	srv, err := NewHTTPServer(f.Service(), HTTPServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	at := 0.0
	for name, svc := range map[string]Service{
		"in-process": f.Service(),
		"http":       NewHTTPClient(ts.URL, "", ts.Client()),
	} {
		res, err := SubmitBatch(ctx, svc, BatchSubmitRequest{Device: 0, At: at, Items: []BatchItem{
			{App: "lambda1", Deadline: at + 30},
			{App: "nope", Deadline: at + 30},
			{App: "lambda2", Deadline: at + 35},
		}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verdicts[0].Accepted || !res.Verdicts[2].Accepted {
			t.Errorf("%s: valid items not admitted: %+v", name, res.Verdicts)
		}
		if !errors.Is(res.Verdicts[1].Error, ErrUnknownApp) {
			t.Errorf("%s: unknown app verdict: %+v", name, res.Verdicts[1])
		}
		if _, err := svc.Advance(ctx, AdvanceRequest{Device: 0, To: at + 50}); err != nil {
			t.Fatalf("%s: advance: %v", name, err)
		}
		at += 100
	}

	// The manager-level call shares the semantics.
	mgr, err := NewManager(Motivational2L2B(), lib, NewMMKPMDF(), ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := mgr.SubmitBatch(0, []ManagerRequest{{App: "lambda1", Deadline: 30}, {App: "lambda2", Deadline: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].Accepted || !vs[1].Accepted || mgr.Stats().Activations != 1 {
		t.Errorf("manager batch: %+v, %d activations", vs, mgr.Stats().Activations)
	}
}

// TestFacadeWatch exercises the streaming surface through the facade:
// the Watch helper over both transports, the event taxonomy constants,
// and resume-from-sequence.
func TestFacadeWatch(t *testing.T) {
	lib := motiv.Library()
	devs := []FleetDevice{{Platform: Motivational2L2B(), Library: lib, Scheduler: NewMMKPMDF()}}
	f, err := NewFleet(devs, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewHTTPServer(f.Service(), HTTPServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ctx := context.Background()

	logs := map[string]*[]Event{}
	var waits []func()
	for name, svc := range map[string]Service{
		"in-process": f.Service(),
		"http":       NewHTTPClient(ts.URL, "", ts.Client()),
	} {
		ch, err := Watch(ctx, svc, WatchRequest{})
		if err != nil {
			t.Fatalf("%s: watch: %v", name, err)
		}
		var evs []Event
		logs[name] = &evs
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ev := range ch {
				evs = append(evs, ev)
			}
		}()
		waits = append(waits, func() { <-done })
	}

	svc := f.Service()
	if _, err := svc.Submit(ctx, SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, wait := range waits {
		wait()
	}
	for name, evs := range logs {
		var types []EventType
		for _, ev := range *evs {
			types = append(types, ev.Type)
		}
		want := []EventType{EventJobAdmitted, EventScheduleChanged, EventJobStarted, EventJobCompleted, EventClockAdvanced}
		if len(types) != len(want) {
			t.Fatalf("%s: stream = %v, want %v", name, types, want)
		}
		for i := range want {
			if types[i] != want[i] {
				t.Fatalf("%s: stream = %v, want %v", name, types, want)
			}
		}
	}
	for i := range *logs["in-process"] {
		if (*logs["in-process"])[i] != (*logs["http"])[i] {
			t.Fatalf("transports diverged at event %d: %+v vs %+v",
				i, (*logs["in-process"])[i], (*logs["http"])[i])
		}
	}
}

func TestFacadeCachingScheduler(t *testing.T) {
	cache := NewScheduleCache(ScheduleCacheParams{Capacity: 16})
	s := NewCachingScheduler(NewMMKPMDF(), cache)
	if s.Name() != "MMKP-MDF+cache" {
		t.Errorf("name = %q", s.Name())
	}
	jobs := JobSet(motiv.ScenarioS1AtT1())
	if _, err := ScheduleJobs(s, jobs, Motivational2L2B(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ScheduleJobs(s, jobs, Motivational2L2B(), 1); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestFacadeRouter exercises the re-exported multi-node surface: a
// consistent-hash ring, two in-process backend fleets, and the router
// serving the Service protocol across them with merged statistics and
// the ErrUnavailable sentinel on a dead peer.
func TestFacadeRouter(t *testing.T) {
	const devices = 4
	lib := motiv.Library()
	newNode := func() *Fleet {
		devs := make([]FleetDevice, devices)
		for i := range devs {
			devs[i] = FleetDevice{Platform: Motivational2L2B(), Library: lib, Scheduler: NewMMKPMDF()}
		}
		f, err := NewFleet(devs, FleetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = f.Close() })
		return f
	}
	ring, err := NewPlacementRing(PlacementRingConfig{Owners: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*Fleet{newNode(), newNode()}
	rt, err := NewRouter([]RouterBackend{
		{Name: "node0", Service: nodes[0].Service()},
		{Name: "node1", Service: nodes[1].Service()},
	}, ring)
	if err != nil {
		t.Fatal(err)
	}
	var svc Service = rt // the router is a plain Service

	ctx := context.Background()
	for d := 0; d < devices; d++ {
		if r, err := svc.Submit(ctx, SubmitRequest{Device: d, At: 0, App: "lambda1", Deadline: 9}); err != nil || !r.Accepted {
			t.Fatalf("device %d: %+v, %v", d, r, err)
		}
	}
	st, err := svc.Stats(ctx, StatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != devices || st.Devices != devices {
		t.Errorf("merged stats = %+v", st)
	}
	// Placement also repartitions a fleet's own shards.
	f, err := NewFleet([]FleetDevice{
		{Platform: Motivational2L2B(), Library: lib, Scheduler: NewMMKPMDF()},
		{Platform: Motivational2L2B(), Library: lib, Scheduler: NewMMKPMDF()},
	}, FleetOptions{Placement: ModuloPlacement(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// A router over an unreachable backend surfaces the taxonomy
	// sentinel.
	ts := httptest.NewServer(nil)
	deadURL := ts.URL
	ts.Close()
	rt2, err := NewRouter([]RouterBackend{{Name: "gone", Service: NewHTTPClient(deadURL, "", nil)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Submit(ctx, SubmitRequest{Device: 0, At: 0, App: "lambda1", Deadline: 9}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("dead peer: %v, want ErrUnavailable", err)
	}
}
