// Benchmarks regenerating the paper's tables and figures. Each bench
// exercises the code path behind one table or figure and reports the
// headline quantity as a custom metric; the full-scale reproduction (all
// 1676 cases) is produced by cmd/rmeval, whose output EXPERIMENTS.md
// records.
package adaptrm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"adaptrm/internal/api"
	"adaptrm/internal/core"
	"adaptrm/internal/dse"
	"adaptrm/internal/eval"
	"adaptrm/internal/exmem"
	"adaptrm/internal/fleet"
	"adaptrm/internal/job"
	"adaptrm/internal/kpn"
	"adaptrm/internal/lagrange"
	"adaptrm/internal/motiv"
	"adaptrm/internal/opset"
	"adaptrm/internal/platform"
	"adaptrm/internal/rm"
	"adaptrm/internal/sched"
	"adaptrm/internal/schedcache"
	"adaptrm/internal/workload"
)

var (
	fixOnce  sync.Once
	fixPlat  platform.Platform
	fixLib   *opset.Library
	fixSuite []workload.Case
	// fixByJobs[level][j] holds up to benchCasesPerGroup case indices.
	fixByJobs map[workload.Level][4][]int
)

const benchCasesPerGroup = 8

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixPlat = platform.OdroidXU4()
		var err error
		fixLib, err = dse.StandardLibrary(fixPlat)
		if err != nil {
			panic(err)
		}
		fixSuite, err = workload.Suite(fixLib, workload.Params{Seed: 1})
		if err != nil {
			panic(err)
		}
		fixByJobs = map[workload.Level][4][]int{}
		for ci := range fixSuite {
			c := &fixSuite[ci]
			arr := fixByJobs[c.Level]
			j := len(c.Jobs) - 1
			if len(arr[j]) < benchCasesPerGroup {
				arr[j] = append(arr[j], ci)
			}
			fixByJobs[c.Level] = arr
		}
	})
}

// BenchmarkTable2DesignTimeDSE regenerates the operating-point tables
// (the paper's Table II is the per-application analogue): full virtual
// benchmarking + DSE + Pareto filtering for the three applications.
func BenchmarkTable2DesignTimeDSE(b *testing.B) {
	plat := platform.OdroidXU4()
	for i := 0; i < b.N; i++ {
		lib, err := dse.StandardLibrary(plat)
		if err != nil {
			b.Fatal(err)
		}
		if lib.Len() != 9 {
			b.Fatal("wrong library")
		}
	}
}

// BenchmarkFig1Motivational schedules scenario S1 with the three policies
// of Fig. 1 and reports their energies as metrics (16.96/15.49/14.63 J in
// the paper).
func BenchmarkFig1Motivational(b *testing.B) {
	plat := motiv.Platform()
	policies := []sched.Scheduler{
		NewFixedMapper(false), NewFixedMapper(true), NewMMKPMDF(),
	}
	energies := make([]float64, len(policies))
	for i := 0; i < b.N; i++ {
		jobs := job.Set(motiv.ScenarioS1AtT1())
		for pi, s := range policies {
			k, err := s.Schedule(jobs, plat, 1)
			if err != nil {
				b.Fatal(err)
			}
			energies[pi] = k.Energy(jobs) + motiv.EnergyBeforeT1
		}
	}
	b.ReportMetric(energies[0], "J-fixed")
	b.ReportMetric(energies[1], "J-fixed-remap")
	b.ReportMetric(energies[2], "J-adaptive")
}

// BenchmarkTable3WorkloadGeneration regenerates the 1676-case suite.
func BenchmarkTable3WorkloadGeneration(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		cases, err := workload.Suite(fixLib, workload.Params{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(cases) != 1676 {
			b.Fatalf("%d cases", len(cases))
		}
	}
}

// benchSubSuite assembles the per-group bench sample as a suite.
func benchSubSuite(b *testing.B) []workload.Case {
	fixtures(b)
	var cases []workload.Case
	for _, level := range []workload.Level{workload.Weak, workload.Tight} {
		for j := 0; j < 4; j++ {
			for _, ci := range fixByJobs[level][j] {
				cases = append(cases, fixSuite[ci])
			}
		}
	}
	return cases
}

// BenchmarkFig2SchedulingRate runs the three schedulers over a fixed
// sample of the suite and reports tight-deadline scheduling rates.
func BenchmarkFig2SchedulingRate(b *testing.B) {
	cases := benchSubSuite(b)
	var rate *eval.RateReport
	for i := 0; i < b.N; i++ {
		res, err := eval.Run(cases, []sched.Scheduler{exmem.New(), lagrange.New(), core.New()},
			fixPlat, eval.RunOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		rate = eval.NewRateReport(res, workload.Tight)
	}
	b.ReportMetric(rate.Rate["EX-MEM"][3]*100, "%rate-exmem-4j")
	b.ReportMetric(rate.Rate["MMKP-LR"][3]*100, "%rate-lr-4j")
	b.ReportMetric(rate.Rate["MMKP-MDF"][3]*100, "%rate-mdf-4j")
}

// BenchmarkTable4RelativeEnergy computes geomean relative energies vs
// EX-MEM over the fixed sample (the paper's Table IV aggregation).
func BenchmarkTable4RelativeEnergy(b *testing.B) {
	cases := benchSubSuite(b)
	var er *eval.EnergyReport
	for i := 0; i < b.N; i++ {
		res, err := eval.Run(cases, []sched.Scheduler{exmem.New(), lagrange.New(), core.New()},
			fixPlat, eval.RunOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		er, err = eval.NewEnergyReport(res, "EX-MEM")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(er.AllLevels["MMKP-MDF"], "relE-mdf")
	b.ReportMetric(er.AllLevels["MMKP-LR"], "relE-lr")
}

// BenchmarkFig3SCurve derives the S-curves and reports the share of
// optimally scheduled cases (paper: MDF 69.6%, LR 9.0%).
func BenchmarkFig3SCurve(b *testing.B) {
	cases := benchSubSuite(b)
	res, err := eval.Run(cases, []sched.Scheduler{exmem.New(), lagrange.New(), core.New()},
		fixPlat, eval.RunOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	er, err := eval.NewEnergyReport(res, "EX-MEM")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sc *eval.SCurveReport
	for i := 0; i < b.N; i++ {
		sc = eval.NewSCurveReport(er)
	}
	for _, s := range []string{"MMKP-MDF", "MMKP-LR"} {
		if n := len(sc.Curves[s]); n > 0 {
			b.ReportMetric(100*float64(sc.OptimalCount[s])/float64(n), "%opt-"+s)
		}
	}
}

// Fig. 4: per-scheduler scheduling latency by job count. These are the
// benches whose ns/op directly regenerate the boxplot medians.
func benchScheduler(b *testing.B, s sched.Scheduler, jobs int, level workload.Level) {
	fixtures(b)
	idxs := fixByJobs[level][jobs-1]
	if len(idxs) == 0 {
		b.Skip("no cases")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &fixSuite[idxs[i%len(idxs)]]
		_, err := s.Schedule(c.Jobs, fixPlat, c.T0)
		if err != nil && err != sched.ErrInfeasible && err != exmem.ErrBudget {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4SearchTimeMDF1Job(b *testing.B)  { benchScheduler(b, core.New(), 1, workload.Tight) }
func BenchmarkFig4SearchTimeMDF2Jobs(b *testing.B) { benchScheduler(b, core.New(), 2, workload.Tight) }
func BenchmarkFig4SearchTimeMDF3Jobs(b *testing.B) { benchScheduler(b, core.New(), 3, workload.Tight) }
func BenchmarkFig4SearchTimeMDF4Jobs(b *testing.B) { benchScheduler(b, core.New(), 4, workload.Tight) }

func BenchmarkFig4SearchTimeLR1Job(b *testing.B) {
	benchScheduler(b, lagrange.New(), 1, workload.Tight)
}
func BenchmarkFig4SearchTimeLR2Jobs(b *testing.B) {
	benchScheduler(b, lagrange.New(), 2, workload.Tight)
}
func BenchmarkFig4SearchTimeLR3Jobs(b *testing.B) {
	benchScheduler(b, lagrange.New(), 3, workload.Tight)
}
func BenchmarkFig4SearchTimeLR4Jobs(b *testing.B) {
	benchScheduler(b, lagrange.New(), 4, workload.Tight)
}

func BenchmarkFig4SearchTimeEXMEM1Job(b *testing.B) {
	benchScheduler(b, exmem.New(), 1, workload.Tight)
}
func BenchmarkFig4SearchTimeEXMEM2Jobs(b *testing.B) {
	benchScheduler(b, exmem.New(), 2, workload.Tight)
}
func BenchmarkFig4SearchTimeEXMEM3Jobs(b *testing.B) {
	benchScheduler(b, exmem.New(), 3, workload.Tight)
}
func BenchmarkFig4SearchTimeEXMEM4Jobs(b *testing.B) {
	benchScheduler(b, exmem.New(), 4, workload.Tight)
}

// Ablation: MDF job selection vs EDF and arrival order (DESIGN.md calls
// out the selection policy as the heuristic's key design choice).
func benchSelection(b *testing.B, sel core.Selection) {
	fixtures(b)
	s := core.NewWithOptions(core.Options{Selection: sel})
	idxs := fixByJobs[workload.Tight][3]
	ok := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &fixSuite[idxs[i%len(idxs)]]
		if _, err := s.Schedule(c.Jobs, fixPlat, c.T0); err == nil {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N)*100, "%scheduled")
}

func BenchmarkAblationSelectMDF(b *testing.B)     { benchSelection(b, core.SelectMDF) }
func BenchmarkAblationSelectEDF(b *testing.B)     { benchSelection(b, core.SelectEDF) }
func BenchmarkAblationSelectArrival(b *testing.B) { benchSelection(b, core.SelectArrival) }

// Ablation: operating-point table size. Larger tables give schedulers
// more choices (better energy) at higher search cost; the paper bounds
// them via Pareto filtering and the DSE thins them further.
func BenchmarkAblationTableSize(b *testing.B) {
	plat := platform.OdroidXU4()
	for _, size := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("%02dpts", size), func(b *testing.B) {
			lib, err := dse.ExploreSuite(kpn.BenchmarkSuite(), plat,
				dse.Options{MaxPointsPerTable: size})
			if err != nil {
				b.Fatal(err)
			}
			cases, err := workload.Suite(lib, workload.Params{
				Seed:   5,
				Counts: map[workload.Level][4]int{workload.Tight: {0, 0, 4, 4}},
			})
			if err != nil {
				b.Fatal(err)
			}
			s := core.New()
			energy := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := &cases[i%len(cases)]
				if k, err := s.Schedule(c.Jobs, plat, c.T0); err == nil {
					energy = k.Energy(c.Jobs)
				}
			}
			_ = energy
		})
	}
}

// Ablation: Algorithm 2 (EDF packing) in isolation via the map-keyed
// compatibility wrapper, which allocates a packer and materialises the
// schedule per call.
func BenchmarkAblationPackEDF(b *testing.B) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	p1 := jobs.ByID(1).Table.ByAlloc(platform.Alloc{2, 1})[0]
	p2 := jobs.ByID(2).Table.ByAlloc(platform.Alloc{2, 1})[0]
	asg := sched.Assignment{1: p1, 2: p2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.PackEDF(jobs, asg, plat, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the same packing through a warm reusable Packer — the
// actual inner loop of MMKP-MDF, which packs with zero heap allocations
// (the allocs/op gate pins this at 0).
func BenchmarkAblationPackEDFReuse(b *testing.B) {
	jobs := job.Set(motiv.ScenarioS1AtT1())
	plat := motiv.Platform()
	p1 := jobs.ByID(1).Table.ByAlloc(platform.Alloc{2, 1})[0]
	p2 := jobs.ByID(2).Table.ByAlloc(platform.Alloc{2, 1})[0]
	packer := sched.NewPacker(plat)
	dense := sched.Assignment{1: p1, 2: p2}.Dense(jobs, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := packer.Pack(jobs, dense, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the warm batch path — one reusable Packer packing a
// burst-sized job set, the inner loop of a batched admission's joint
// solve. Like the single-submit path (AblationPackEDFReuse) it must
// stay allocation-free; the allocs/op gate pins it at 0.
func BenchmarkAblationPackEDFBatchReuse(b *testing.B) {
	base := job.Set(motiv.ScenarioS1AtT1())
	tables := []*opset.Table{base.ByID(1).Table, base.ByID(2).Table}
	var jobs job.Set
	for i := 0; i < 6; i++ {
		jobs = append(jobs, &job.Job{
			ID:        i + 1,
			Table:     tables[i%2],
			Arrival:   1,
			Deadline:  100 + 10*float64(i),
			Remaining: 1,
		})
	}
	plat := motiv.Platform()
	packer := sched.NewPacker(plat)
	dense := sched.NewDenseAssignment(len(jobs))
	for i, j := range jobs {
		dense[i] = int32(j.Table.ByAlloc(platform.Alloc{2, 1})[0])
	}
	if err := packer.Pack(jobs, dense, 1); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := packer.Pack(jobs, dense, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the online runtime manager on a dynamic trace (throughput of
// the full activation path: advance, schedule, commit).
func BenchmarkOnlineManagerTrace(b *testing.B) {
	fixtures(b)
	trace, err := workload.Trace(fixLib, workload.TraceParams{Rate: 0.2, Horizon: 120, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr, err := rm.New(fixPlat, fixLib, core.New(), rm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, req := range trace {
			if _, _, _, err := mgr.Submit(req.At, req.App, req.Deadline); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := mgr.Drain(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fleet throughput: the concurrent multi-device service replaying a
// multi-tenant trace through 1, 4, and 8 shards, with and without the
// schedule cache. Each iteration replays the trace three times with
// shifted virtual clocks, emulating a long-running server whose workload
// shapes recur (passes 2–3 run against warm caches). Reported metrics
// are end-to-end requests/sec (enqueue through drain) and the
// schedule-cache hit rate.
func benchFleet(b *testing.B, shards int, cache bool) {
	fixtures(b)
	const (
		devices = 8
		horizon = 600.0
		passes  = 3
	)
	trace, err := workload.FleetTrace(fixLib, workload.FleetTraceParams{
		Devices: devices, Rate: 0.05, RateSpread: 0.5, Horizon: horizon, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	var last fleet.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		devs := make([]fleet.DeviceConfig, devices)
		for d := range devs {
			devs[d] = fleet.DeviceConfig{Platform: fixPlat, Library: fixLib, Scheduler: core.New()}
		}
		f, err := fleet.New(devs, fleet.Options{Shards: shards, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		// Replay keeps the fire-and-forget enqueue path: shard workers
		// pipeline behind the submitter, which is the throughput being
		// measured (the synchronous Service path would serialise them).
		for p := 0; p < passes; p++ {
			shift := float64(p) * horizon
			shifted := make([]workload.FleetRequest, len(trace))
			for j, r := range trace {
				r.At += shift
				r.Deadline += shift
				shifted[j] = r
			}
			if err := f.Replay(shifted); err != nil {
				b.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		last = f.Stats()
	}
	reqs := float64(passes*len(trace)) * float64(b.N)
	b.ReportMetric(reqs/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(100*last.CacheHitRate(), "%cache-hit")
}

func BenchmarkFleetThroughput1Shard(b *testing.B)  { benchFleet(b, 1, true) }
func BenchmarkFleetThroughput4Shards(b *testing.B) { benchFleet(b, 4, true) }
func BenchmarkFleetThroughput8Shards(b *testing.B) { benchFleet(b, 8, true) }

// The uncached baseline isolates the schedule cache's contribution to
// fleet throughput at a fixed shard count.
func BenchmarkFleetThroughput4ShardsNoCache(b *testing.B) { benchFleet(b, 4, false) }

// Batched admission under bursty traffic: the same coincident-arrival
// fleet trace (every Poisson event brings a burst of 4 same-device
// requests) replayed with and without a batch window. Replay's
// fire-and-forget enqueue lets mailboxes fill, so the workers can
// coalesce queued same-device submits into single SubmitBatch
// activations over the warm packer. Reported metrics: end-to-end
// requests/sec, scheduler activations per request (the quantity
// batching amortises — admission and energy statistics are identical
// by the equivalence suite), and the share of requests that rode in a
// coalesced batch.
func benchFleetBursty(b *testing.B, window float64) {
	fixtures(b)
	const devices = 8
	trace, err := workload.FleetTrace(fixLib, workload.FleetTraceParams{
		Devices: devices, Rate: 0.02, Horizon: 600, BurstSize: 4, Seed: 23,
	})
	if err != nil {
		b.Fatal(err)
	}
	var last fleet.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		devs := make([]fleet.DeviceConfig, devices)
		for d := range devs {
			devs[d] = fleet.DeviceConfig{Platform: fixPlat, Library: fixLib, Scheduler: core.New()}
		}
		f, err := fleet.New(devs, fleet.Options{Shards: 4, BatchWindow: window})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Replay(trace); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		last = f.Stats()
	}
	reqs := float64(len(trace)) * float64(b.N)
	b.ReportMetric(reqs/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(last.Activations)/float64(last.Submitted), "activations/req")
	b.ReportMetric(100*float64(last.CoalescedRequests)/float64(last.Submitted), "%coalesced")
}

func BenchmarkFleetBurstyUnbatched(b *testing.B) { benchFleetBursty(b, 0) }
func BenchmarkFleetBurstyBatched(b *testing.B)   { benchFleetBursty(b, 0.05) }

// Anytime refinement on a warm fleet: the tentpole measurement of the
// "exact quality at heuristic latency" subsystem. A warm-up pass runs
// the full trace with background refinement and promotes every exact
// result into a fleet-wide shared cache tier; the measured pass then
// replays the same trace through the synchronous admission path against
// that warm tier, with refinement still running for anything the tier
// does not cover. Admissions are served at cache-lookup latency with
// EX-MEM-quality schedules — compare the reported p99 and J against
// BenchmarkFleetAnytimeColdMDF, the heuristic-only baseline. Reported
// metrics: p50/p99 synchronous admission latency (µs), total executed
// energy of the last iteration (J), shared-tier hits and refinement
// swaps per iteration.
func benchFleetAnytime(b *testing.B, warm, refine bool) {
	fixtures(b)
	const devices = 8
	trace, err := workload.FleetTrace(fixLib, workload.FleetTraceParams{
		Devices: devices, Rate: 0.05, RateSpread: 0.5, Horizon: 600, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	newFleet := func(shared *schedcache.Shared, refine bool, workers int) *fleet.Fleet {
		devs := make([]fleet.DeviceConfig, devices)
		for d := range devs {
			devs[d] = fleet.DeviceConfig{Platform: fixPlat, Library: fixLib, Scheduler: core.New()}
		}
		opt := fleet.Options{Shards: 4, Cache: true, SharedCache: shared}
		if refine {
			opt.Refine = true
			opt.RefineWorkers = workers
		}
		f, err := fleet.New(devs, opt)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	var shared *schedcache.Shared
	if warm {
		shared = schedcache.NewShared()
		wf := newFleet(shared, true, 2)
		if err := wf.Replay(trace); err != nil {
			b.Fatal(err)
		}
		if err := wf.Close(); err != nil {
			b.Fatal(err)
		}
	}
	lat := make([]time.Duration, 0, len(trace)*b.N)
	var last fleet.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := newFleet(shared, refine, 2)
		svc := f.Service()
		for _, r := range trace {
			start := time.Now()
			_, err := svc.Submit(context.Background(), api.SubmitRequest{
				Device: r.Device, At: r.At, App: r.App, Deadline: r.Deadline,
			})
			lat = append(lat, time.Since(start))
			if err != nil && !errors.Is(err, api.ErrInfeasible) {
				b.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		last = f.Stats()
	}
	b.StopTimer()
	sort.Slice(lat, func(a, c int) bool { return lat[a] < lat[c] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds())/1e3, "p50-µs")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds())/1e3, "p99-µs")
	b.ReportMetric(last.Energy, "J")
	b.ReportMetric(float64(last.CacheSharedHits), "shared-hits")
	b.ReportMetric(float64(last.Swaps), "swaps")
}

func BenchmarkFleetAnytimeWarm(b *testing.B) { benchFleetAnytime(b, true, true) }

// The heuristic-only baseline: same trace, same synchronous admission
// path, no shared tier and no refinement — pure MMKP-MDF latency and
// energy, the row BenchmarkFleetAnytimeWarm is read against.
func BenchmarkFleetAnytimeColdMDF(b *testing.B) { benchFleetAnytime(b, false, false) }
