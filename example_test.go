package adaptrm_test

import (
	"fmt"
	"math"

	"adaptrm"
	"adaptrm/internal/motiv"
)

// ExampleScheduleJobs reproduces the paper's motivational scenario S1 at
// t=1 with the adaptive MMKP-MDF scheduler: the total energy (including
// the 1.68 J job σ1 consumed before the activation) is the 14.63 J of
// Fig. 1(c).
func ExampleScheduleJobs() {
	plat := adaptrm.Motivational2L2B()
	jobs := adaptrm.JobSet(motiv.ScenarioS1AtT1())
	k, err := adaptrm.ScheduleJobs(adaptrm.NewMMKPMDF(), jobs, plat, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total := k.Energy(jobs) + motiv.EnergyBeforeT1
	fmt.Printf("segments: %d\n", len(k.Segments))
	fmt.Printf("energy: %.2f J\n", math.Round(total*100)/100)
	// Output:
	// segments: 2
	// energy: 14.63 J
}

// ExampleNewFixedMapper shows why fixed mappings reject scenario S2
// while the adaptive mapper serves it.
func ExampleNewFixedMapper() {
	plat := adaptrm.Motivational2L2B()
	jobs := adaptrm.JobSet(motiv.ScenarioS2AtT1())
	if _, err := adaptrm.ScheduleJobs(adaptrm.NewFixedMapper(false), jobs, plat, 1); err != nil {
		fmt.Println("fixed mapper: rejected")
	}
	if _, err := adaptrm.ScheduleJobs(adaptrm.NewMMKPMDF(), jobs, plat, 1); err == nil {
		fmt.Println("adaptive mapper: scheduled")
	}
	// Output:
	// fixed mapper: rejected
	// adaptive mapper: scheduled
}

// ExampleNewManager runs the online manager over the motivational
// request sequence.
func ExampleNewManager() {
	plat := adaptrm.Motivational2L2B()
	mgr, err := adaptrm.NewManager(plat, motiv.Library(), adaptrm.NewMMKPMDF(), adaptrm.ManagerOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_, ok1, _, _ := mgr.Submit(0, "lambda1", 9)
	_, ok2, _, _ := mgr.Submit(1, "lambda2", 5)
	if _, err := mgr.Drain(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := mgr.Stats()
	fmt.Printf("admitted: %v %v\n", ok1, ok2)
	fmt.Printf("completed: %d, misses: %d, energy: %.2f J\n",
		st.Completed, st.DeadlineMisses, st.Energy)
	// Output:
	// admitted: true true
	// completed: 2, misses: 0, energy: 14.63 J
}
